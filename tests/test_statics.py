"""The invariant linter (``repro lint``): rules, suppressions, baseline, CLI.

Each rule is exercised against a dedicated fixture under
``tests/data/statics/`` with positive cases (must be found), negative
cases (compliant idioms must stay silent), and a suppressed case (inline
directive with a written reason).  The fixture tests are written so that
disabling a rule makes its test fail: every expectation counts concrete
positives.

The self-check tests at the bottom are the other half of the CI gate:
they pin the *live tree* against the committed ``LINT_BASELINE.json``, so
a new violation (or a fixed-but-still-baselined one) fails the suite even
before the dedicated ``static-analysis`` CI job runs.
"""

from __future__ import annotations

import ast
import json
from collections import Counter
from pathlib import Path

import pytest

from repro.cli import main
from repro.statics import (
    DEFAULT_BASELINE,
    DEFAULT_TARGETS,
    META_CODE,
    BaselineEntry,
    Finding,
    ImportMap,
    all_rules,
    load_baseline,
    run_lint,
    rules_by_code,
    save_baseline,
    split_against_baseline,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "data" / "statics"


def lint_fixture(name: str, rules=None):
    """Lint one fixture file with no baseline; returns the full report."""
    return run_lint(
        root=FIXTURES,
        targets=(name,),
        rules=rules,
        baseline=Counter(),
    )


def codes_of(report) -> list[str]:
    return [f.code for f in report.findings]


# ----------------------------------------------------------------------
# Per-rule fixtures: positives found, negatives silent, suppression honored
# ----------------------------------------------------------------------
#: (fixture, rule code, count of positive findings, substrings that must
#: each appear in exactly one finding's offending-line content)
RULE_CASES = [
    (
        "rpl001_cases.py",
        "RPL001",
        5,
        ["clock.time()", "datetime.now()", "random.random()",
         "np.random.exponential", "clock.perf_counter()"],
    ),
    (
        "rpl002_cases.py",
        "RPL002",
        6,
        ["wall_seconds.values()", "x * 0.5", "sum(set(xs))",
         "os.listdir(path)]", "glob.glob(pattern)", "rglob"],
    ),
    (
        "rpl003_cases.py",
        "RPL003",
        6,
        ["node.up = False", "node.used_gpus += 4",
         'node.allocations["job-1"] = share',
         'del node.allocations["job-1"]', ".pop", "_notify"],
    ),
    (
        "rpl004_cases.py",
        "RPL004",
        4,
        ["def widget_to_dict", "def to_dict", "json.dump(payload, fh)",
         "json.dumps(payload, indent=1)"],
    ),
    (
        "rpl005_cases.py",
        "RPL005",
        2,
        ["self._best_cache: dict = {}", "def positive_lru_over_store"],
    ),
    (
        "rpl006_cases.py",
        "RPL006",
        1,
        ['object.__setattr__(self, "value", self.value + 1)'],
    ),
    (
        "rpl007_cases.py",
        "RPL007",
        3,
        ["except Exception:", "except:", "(ValueError, Exception)"],
    ),
]


class TestRuleFixtures:
    @pytest.mark.parametrize(
        "fixture,code,count,anchors",
        RULE_CASES,
        ids=[c[1] for c in RULE_CASES],
    )
    def test_positives_found_negatives_silent(
        self, fixture, code, count, anchors
    ):
        report = lint_fixture(fixture)
        found = [f for f in report.findings if f.code == code]
        assert len(found) == count, [f.format() for f in report.findings]
        # Every finding sits on a positive_* line (or the decorated def /
        # memo-init it anchors to), never on a negative_* case.
        for finding in found:
            assert "negative" not in finding.content
            assert "suppressed" not in finding.content
        # Each anchor substring identifies exactly one distinct positive.
        for anchor in anchors:
            hits = [f for f in found if anchor in f.content]
            assert len(hits) == 1, (anchor, [f.content for f in found])
        # No stray findings of other codes (the fixtures are single-rule
        # by construction), and no unused-suppression meta noise.
        assert set(codes_of(report)) == {code}

    @pytest.mark.parametrize(
        "fixture,code,count,anchors",
        RULE_CASES,
        ids=[c[1] for c in RULE_CASES],
    )
    def test_suppressed_case_is_suppressed(self, fixture, code, count, anchors):
        report = lint_fixture(fixture)
        assert report.suppressed == 1
        # The directive was *used*: no RPL000 unused-suppression finding.
        assert META_CODE not in codes_of(report)

    @pytest.mark.parametrize(
        "fixture,code,count,anchors",
        RULE_CASES,
        ids=[c[1] for c in RULE_CASES],
    )
    def test_fixture_detects_rule_disablement(
        self, fixture, code, count, anchors
    ):
        """With the rule deselected the positives vanish — proving the
        findings in the sibling test come from *this* rule, not another."""
        others = tuple(r for r in all_rules() if r.code != code)
        report = lint_fixture(fixture, rules=others)
        assert code not in codes_of(report)
        # ...and its now-pointless suppression is called out as unused.
        assert META_CODE in codes_of(report)

    def test_rule_registry_is_complete_and_sorted(self):
        codes = [r.code for r in all_rules()]
        assert codes == sorted(codes)
        assert codes == [
            "RPL001", "RPL002", "RPL003", "RPL004", "RPL005", "RPL006",
            "RPL007", "RPL008", "RPL009", "RPL010",
        ]
        with pytest.raises(ValueError):
            rules_by_code(["RPL999"])


# ----------------------------------------------------------------------
# Whole-program flow rules (RPL008-010)
# ----------------------------------------------------------------------
#: Same shape as RULE_CASES, but these fixtures are linted with only the
#: rule under test selected: they deliberately contain RPL001-visible
#: source lines (that is the point — the flow rule must fire where the
#: per-line rule cannot), so the single-rule-per-fixture invariant of
#: RULE_CASES does not hold.
FLOW_CASES = [
    (
        "rpl008_cases.py",
        "RPL008",
        3,
        ["json.dumps(doc", 'persist({"stamp"', "hashlib.sha256"],
    ),
    (
        "rpl009_cases.py",
        "RPL009",
        3,
        ['"statu": "idle"', '{"type": protocol.SUBMIT}', '"SUBMITT"'],
    ),
    (
        "rpl010_cases.py",
        "RPL010",
        1,
        ["middle(injector)"],
    ),
]


class TestFlowRuleFixtures:
    @pytest.mark.parametrize(
        "fixture,code,count,anchors",
        FLOW_CASES,
        ids=[c[1] for c in FLOW_CASES],
    )
    def test_positives_found_negatives_silent(
        self, fixture, code, count, anchors
    ):
        report = lint_fixture(fixture, rules=rules_by_code([code]))
        found = [f for f in report.findings if f.code == code]
        assert len(found) == count, [f.format() for f in report.findings]
        for finding in found:
            assert "negative" not in finding.content
            assert "suppressed" not in finding.content
        for anchor in anchors:
            hits = [f for f in found if anchor in f.content]
            assert len(hits) == 1, (anchor, [f.content for f in found])
        assert set(codes_of(report)) == {code}
        # The fixture's one suppression directive was honored *and* used.
        assert report.suppressed == 1
        assert META_CODE not in codes_of(report)

    @pytest.mark.parametrize(
        "fixture,code,count,anchors",
        FLOW_CASES,
        ids=[c[1] for c in FLOW_CASES],
    )
    def test_fixture_detects_rule_disablement(
        self, fixture, code, count, anchors
    ):
        others = tuple(r for r in all_rules() if r.code != code)
        report = lint_fixture(fixture, rules=others)
        assert code not in codes_of(report)
        assert META_CODE in codes_of(report)

    def test_rpl008_sees_the_two_hop_flow_rpl001_cannot(self):
        """The acceptance demo: entropy born in one function, laundered
        through a second, persisted in a third.  RPL001 flags the source
        expression; only RPL008 connects it to the sink and anchors the
        finding at the crossing."""
        flow = lint_fixture(
            "rpl008_cases.py", rules=rules_by_code(["RPL008"])
        )
        hit = next(f for f in flow.findings if "json.dumps(doc" in f.content)
        assert hit.line == 35
        assert "time.time (rpl008_cases.py:19)" in hit.message
        # The finding carries the full hop trail for --explain.
        assert "source time.time at rpl008_cases.py:19" in hit.explanation
        assert (
            "through rpl008_cases.entropy_amount()" in hit.explanation
        )
        assert "through rpl008_cases.launder()" in hit.explanation
        assert "sink json.dumps at rpl008_cases.py:35" in hit.explanation

        per_line = lint_fixture(
            "rpl008_cases.py", rules=rules_by_code(["RPL001"])
        )
        rpl001_lines = {
            f.line for f in per_line.findings if f.code == "RPL001"
        }
        assert 19 in rpl001_lines  # RPL001 sees the source line...
        assert hit.line not in rpl001_lines  # ...but not the sink crossing

    def test_rpl008_sink_behind_a_parameter(self):
        """``persist(doc)`` anchors at the *call site* passing tainted
        data, with the sink reported inside the callee."""
        flow = lint_fixture(
            "rpl008_cases.py", rules=rules_by_code(["RPL008"])
        )
        hit = next(f for f in flow.findings if "persist(" in f.content)
        assert hit.line == 40
        assert "os.getpid (rpl008_cases.py:39)" in hit.message
        assert "sink json.dumps (rpl008_cases.py:29)" in hit.message
        assert "into rpl008_cases.persist()" in hit.explanation

    def test_rpl009_violation_shapes(self):
        report = lint_fixture(
            "rpl009_cases.py", rules=rules_by_code(["RPL009"])
        )
        messages = sorted(f.message for f in report.findings)
        assert messages == [
            "STATUS frame literal has key(s) outside the schema: statu",
            "SUBMIT frame literal is missing required key(s): job",
            "frame literal has unknown type 'SUBMITT' (known: "
            "CLUSTER_EVENT, DRAIN, DRAINED, ERROR, METRICS, OK, STATUS, "
            "SUBMIT)",
        ]

    def test_rpl010_escape_chain_and_containment(self):
        report = lint_fixture(
            "rpl010_cases.py", rules=rules_by_code(["RPL010"])
        )
        (hit,) = report.findings
        # Only the armed, unguarded entry is flagged; the guarded and the
        # disarmed entries stay silent.
        assert "positive_entry()" in hit.message
        assert "fault seam 'fixture-seam' (rpl010_cases.py:17)" in hit.message
        assert (
            "armed seam 'fixture-seam' at rpl010_cases.py:17"
            in hit.explanation
        )
        assert (
            "escapes through call to rpl010_cases.seam_site()"
            in hit.explanation
        )
        assert (
            "reaches entry point rpl010_cases.positive_entry() uncontained"
            in hit.explanation
        )

    def test_explanation_is_not_part_of_finding_identity(self):
        """Baseline/ordering identity must ignore the explanation payload
        or every dataflow refinement would churn the committed baseline."""
        a = Finding(
            path="m.py", line=1, col=1, code="RPL008",
            message="msg", content="c", explanation="trail A",
        )
        b = Finding(
            path="m.py", line=1, col=1, code="RPL008",
            message="msg", content="c", explanation="trail B",
        )
        assert a == b
        assert not a < b and not b < a


class TestFrameSchemas:
    """``protocol.FRAME_SCHEMAS`` and its runtime companion."""

    def test_every_schema_requires_the_type_key(self):
        from repro.service import protocol

        for frame_type, (required, optional) in sorted(
            protocol.FRAME_SCHEMAS.items()
        ):
            assert "type" in required, frame_type
            assert not (required & optional), frame_type

    def test_validate_frame_matches_static_verdicts(self):
        from repro.service import protocol

        assert protocol.validate_frame({"type": protocol.STATUS}) == []
        assert protocol.validate_frame(
            {"type": protocol.STATUS, "status": "idle"}
        ) == []
        assert protocol.validate_frame({"type": "NOPE"}) == [
            "unknown frame type 'NOPE'"
        ]
        assert protocol.validate_frame(
            {"type": protocol.SUBMIT, "jbo": {}}
        ) == ["missing required key 'job'", "unexpected key 'jbo'"]


# ----------------------------------------------------------------------
# Suppression contract (RPL000 meta findings)
# ----------------------------------------------------------------------
class TestSuppressionContract:
    @pytest.fixture()
    def report(self):
        return lint_fixture("rpl000_cases.py")

    def test_reasonless_suppression_does_not_suppress(self, report):
        # The directive without ' -- reason' earns an RPL000 *and* leaves
        # the underlying RPL004 finding standing.
        meta = [
            f for f in report.findings
            if f.code == META_CODE and "no written justification" in f.message
        ]
        assert len(meta) == 1
        assert any(
            f.code == "RPL004" and f.line == meta[0].line
            for f in report.findings
        )

    def test_unused_suppression_is_flagged(self, report):
        assert any(
            f.code == META_CODE and "matches no finding" in f.message
            for f in report.findings
        )

    def test_malformed_directive_is_flagged(self, report):
        assert any(
            f.code == META_CODE and "malformed" in f.message
            for f in report.findings
        )

    def test_directive_inside_string_is_ignored(self, report):
        # The string literal mentioning repro-lint produces neither a
        # suppression nor a meta finding.
        in_string = [
            f for f in report.findings if "not a comment" in f.content
        ]
        assert in_string == []

    def test_nothing_suppressed(self, report):
        assert report.suppressed == 0


# ----------------------------------------------------------------------
# Core helpers
# ----------------------------------------------------------------------
class TestImportMap:
    def resolve(self, source: str, expr: str) -> str | None:
        tree = ast.parse(source + "\n" + expr)
        imports = ImportMap(tree)
        last = tree.body[-1]
        assert isinstance(last, ast.Expr)
        return imports.resolve(last.value)

    def test_aliased_module(self):
        assert (
            self.resolve("import time as _t", "_t.perf_counter")
            == "time.perf_counter"
        )

    def test_from_import_symbol(self):
        assert (
            self.resolve("from datetime import datetime", "datetime.now")
            == "datetime.datetime.now"
        )

    def test_submodule_attribute_chain(self):
        assert (
            self.resolve("import numpy as np", "np.random.exponential")
            == "numpy.random.exponential"
        )

    def test_unimported_root_is_none(self):
        assert self.resolve("import os", "job.random.draw") is None


class TestFindingIdentity:
    def test_identity_ignores_line_numbers(self):
        a = Finding("p.py", 10, 1, "RPL001", "m", content="x = time.time()")
        b = Finding("p.py", 99, 5, "RPL001", "m", content="x = time.time()")
        assert a.identity == b.identity

    def test_format_is_clickable(self):
        f = Finding("src/m.py", 3, 7, "RPL002", "msg", content="c")
        assert f.format() == "src/m.py:3:7: RPL002 msg"


# ----------------------------------------------------------------------
# Baseline mechanics
# ----------------------------------------------------------------------
class TestBaseline:
    def findings(self, *contents: str) -> list[Finding]:
        return [
            Finding("mod.py", i + 1, 1, "RPL001", "m", content=c)
            for i, c in enumerate(contents)
        ]

    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        findings = self.findings("a()", "b()")
        save_baseline(path, findings)
        loaded = load_baseline(path)
        assert sum(loaded.values()) == 2
        assert loaded[BaselineEntry("mod.py", "RPL001", "a()")] == 1

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == Counter()

    def test_unknown_format_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"format_version": 99, "findings": []}')
        with pytest.raises(ValueError, match="format version"):
            load_baseline(path)

    def test_split_new_grandfathered_stale(self):
        findings = self.findings("kept()", "introduced()")
        baseline = Counter(
            [
                BaselineEntry("mod.py", "RPL001", "kept()"),
                BaselineEntry("mod.py", "RPL001", "fixed()"),
            ]
        )
        new, grandfathered, stale = split_against_baseline(findings, baseline)
        assert [f.content for f in new] == ["introduced()"]
        assert [f.content for f in grandfathered] == ["kept()"]
        assert [e.content for e in stale] == ["fixed()"]

    def test_multiset_duplicates_need_two_entries(self):
        # Two identical offending lines, one baseline entry: the second
        # occurrence is new.
        findings = self.findings("dup()", "dup()")
        baseline = Counter([BaselineEntry("mod.py", "RPL001", "dup()")])
        new, grandfathered, stale = split_against_baseline(findings, baseline)
        assert len(grandfathered) == 1
        assert len(new) == 1
        assert stale == []

    def test_baseline_survives_line_drift(self):
        # Same content on a different line still matches its entry.
        moved = [Finding("mod.py", 500, 9, "RPL001", "m", content="kept()")]
        baseline = Counter([BaselineEntry("mod.py", "RPL001", "kept()")])
        new, grandfathered, stale = split_against_baseline(moved, baseline)
        assert new == [] and stale == []


# ----------------------------------------------------------------------
# Engine determinism
# ----------------------------------------------------------------------
class TestEngineDeterminism:
    def test_repeat_runs_identical(self):
        first = lint_fixture("rpl002_cases.py")
        second = lint_fixture("rpl002_cases.py")
        assert first.findings == second.findings
        assert first.as_dict() == second.as_dict()

    def test_findings_sorted_by_location(self):
        report = run_lint(
            root=FIXTURES,
            targets=(".",),
            baseline=Counter(),
        )
        assert report.findings == sorted(report.findings)
        assert report.files_scanned == len(list(FIXTURES.glob("*.py")))


# ----------------------------------------------------------------------
# Call graph and summary cache (the whole-program substrate)
# ----------------------------------------------------------------------
class TestCallGraph:
    def test_same_tree_yields_identical_sorted_json(self):
        from repro.statics import Project, collect_files

        docs = []
        for _ in range(2):
            project = Project.build(
                FIXTURES, collect_files(FIXTURES, (".",))
            )
            docs.append(
                json.dumps(project.call_graph_dict(), allow_nan=False)
            )
        assert docs[0] == docs[1]
        doc = json.loads(docs[0])
        functions = doc["functions"]
        assert list(functions) == sorted(functions)
        for row in functions.values():
            assert row["calls"] == sorted(row["calls"])

    def test_resolves_project_internal_edges(self):
        from repro.statics import Project, collect_files

        project = Project.build(FIXTURES, collect_files(FIXTURES, (".",)))
        functions = project.call_graph_dict()["functions"]
        assert (
            "rpl010_cases.seam_site"
            in functions["rpl010_cases.middle"]["calls"]
        )

    def test_resolves_package_reexports(self):
        """``from repro.experiments import execute_run`` resolves through
        the package ``__init__`` to the defining module — the edge RPL010
        needs to follow a fault from the runner up to the CLI entry."""
        from repro.statics import Project, collect_files

        project = Project.build(
            REPO_ROOT,
            collect_files(
                REPO_ROOT,
                ("src/repro/cli.py", "src/repro/experiments"),
            ),
        )
        functions = project.call_graph_dict()["functions"]
        assert (
            "repro.experiments.runner.execute_run"
            in functions["repro.cli._contained_execute"]["calls"]
        )


class TestSummaryCache:
    CLEAN = "def helper():\n    return 1\n"
    TAINTED = (
        "import json\n"
        "import time\n"
        "\n"
        "\n"
        "def stamp():\n"
        "    return time.time()\n"
        "\n"
        "\n"
        "def emit():\n"
        '    return json.dumps({"t": stamp()}, allow_nan=False)\n'
    )

    def _build(self, root, cache):
        from repro.statics import Project, collect_files

        return Project.build(
            root, collect_files(root, (".",)), cache_path=cache
        )

    def test_warm_run_hits_and_edit_invalidates(self, tmp_path):
        mod = tmp_path / "mod.py"
        other = tmp_path / "other.py"
        mod.write_text(self.TAINTED)
        other.write_text(self.CLEAN)
        cache = tmp_path / "cache" / "summaries.json"

        cold = self._build(tmp_path, cache)
        assert (cold.cache_hits, cold.cache_misses) == (0, 2)
        cold_hits = [h.sort_key() for h in cold.flow_hits()]
        assert len(cold_hits) == 1  # stamp() -> json.dumps crosses a call

        warm = self._build(tmp_path, cache)
        assert (warm.cache_hits, warm.cache_misses) == (2, 0)
        assert [h.sort_key() for h in warm.flow_hits()] == cold_hits

        # Editing one file invalidates exactly that file's entry...
        other.write_text("def helper():\n    return 2\n")
        edited = self._build(tmp_path, cache)
        assert (edited.cache_hits, edited.cache_misses) == (1, 1)
        assert [h.sort_key() for h in edited.flow_hits()] == cold_hits

        # ...and an edit that changes the facts changes the verdict.
        mod.write_text(self.TAINTED.replace("time.time()", "0.0"))
        fixed = self._build(tmp_path, cache)
        assert (fixed.cache_hits, fixed.cache_misses) == (1, 1)
        assert fixed.flow_hits() == []

    def test_version_mismatch_discards_cache(self, tmp_path):
        from repro.statics.dataflow import load_summary_cache

        cache = tmp_path / "summaries.json"
        (tmp_path / "mod.py").write_text(self.CLEAN)
        self._build(tmp_path, cache)
        assert load_summary_cache(cache) != {}

        doc = json.loads(cache.read_text())
        doc["facts_version"] = -1
        cache.write_text(json.dumps(doc))
        assert load_summary_cache(cache) == {}
        rebuilt = self._build(tmp_path, cache)
        assert (rebuilt.cache_hits, rebuilt.cache_misses) == (0, 1)


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestLintCli:
    def test_fixture_violations_exit_1(self, capsys):
        rc = main(
            [
                "lint",
                "--root", str(FIXTURES),
                "--no-baseline",
                "rpl001_cases.py",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "RPL001" in out
        assert "5 new finding(s)" in out
        assert "1 suppressed" in out

    def test_select_restricts_rules(self, capsys):
        rc = main(
            [
                "lint",
                "--root", str(FIXTURES),
                "--no-baseline",
                "--select", "RPL004",
                "rpl004_cases.py",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "RPL004" in out and "RPL001" not in out

    def test_unknown_select_is_usage_error(self, capsys):
        rc = main(["lint", "--select", "RPL777"])
        assert rc == 2

    def test_missing_target_is_usage_error(self, capsys):
        rc = main(["lint", "--root", str(FIXTURES), "no/such/dir"])
        assert rc == 2
        assert "not found" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        rc = main(["lint", "--list-rules"])
        out = capsys.readouterr().out
        assert rc == 0
        for code in ("RPL001", "RPL002", "RPL003", "RPL004", "RPL005",
                     "RPL006", "RPL007", "RPL008", "RPL009", "RPL010"):
            assert code in out

    def test_report_artifact(self, tmp_path, capsys):
        artifact = tmp_path / "lint-report.json"
        rc = main(
            [
                "lint",
                "--root", str(FIXTURES),
                "--no-baseline",
                "--report", str(artifact),
                "rpl006_cases.py",
            ]
        )
        assert rc == 1
        doc = json.loads(artifact.read_text())
        assert doc["files_scanned"] == 1
        assert doc["suppressed"] == 1
        assert [row["code"] for row in doc["new"]] == ["RPL006"]
        assert doc["new"][0]["line"] == 14

    def test_baseline_lifecycle(self, tmp_path, capsys):
        """update -> clean gate -> fix -> stale entry fails --check-baseline."""
        target = tmp_path / "mod.py"
        target.write_text("import time\n\nT0 = time.time()\n")

        # A fresh violation fails against the (absent == empty) baseline.
        argv = ["lint", "--root", str(tmp_path), "mod.py"]
        assert main(argv) == 1

        # Grandfather it; the gate goes green without touching the code.
        assert main([*argv, "--update-baseline"]) == 0
        baseline = json.loads((tmp_path / DEFAULT_BASELINE).read_text())
        assert [e["code"] for e in baseline["findings"]] == ["RPL001"]
        assert main([*argv, "--check-baseline"]) == 0

        # Fix the code: the lingering entry is stale — tolerated by a
        # plain run, fatal under --check-baseline.
        target.write_text("T0 = 0.0\n")
        assert main(argv) == 0
        assert main([*argv, "--check-baseline"]) == 1
        assert "stale" in capsys.readouterr().out

        # Regenerating empties the baseline and the gate is green again.
        assert main([*argv, "--update-baseline"]) == 0
        baseline = json.loads((tmp_path / DEFAULT_BASELINE).read_text())
        assert baseline["findings"] == []
        assert main([*argv, "--check-baseline"]) == 0

    def test_paths_subset_reports_without_baseline(self, capsys):
        """--paths lints just the named files and never consults (or
        writes) the baseline: findings always report as new."""
        rc = main(
            [
                "lint",
                "--root", str(FIXTURES),
                "--paths", "rpl009_cases.py",
                "--select", "RPL009",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "3 new finding(s)" in out

    def test_paths_refuses_baseline_operations(self, capsys):
        for flag in ("--check-baseline", "--update-baseline"):
            rc = main(
                [
                    "lint",
                    "--root", str(FIXTURES),
                    "--paths", "rpl009_cases.py",
                    flag,
                ]
            )
            assert rc == 2, flag

    def test_call_graph_artifact_is_deterministic(self, tmp_path, capsys):
        argv = [
            "lint",
            "--root", str(FIXTURES),
            "--no-baseline",
            "--select", "RPL010",
            "rpl010_cases.py",
        ]
        graphs = []
        for name in ("first.json", "second.json"):
            out = tmp_path / name
            assert main([*argv, "--call-graph", str(out)]) == 1
            graphs.append(out.read_bytes())
        assert graphs[0] == graphs[1]
        doc = json.loads(graphs[0])
        functions = doc["functions"]
        assert list(functions) == sorted(functions)
        assert (
            "rpl010_cases.seam_site"
            in functions["rpl010_cases.middle"]["calls"]
        )

    def test_call_graph_without_project_rules_is_usage_error(
        self, tmp_path, capsys
    ):
        rc = main(
            [
                "lint",
                "--root", str(FIXTURES),
                "--no-baseline",
                "--select", "RPL001",
                "--call-graph", str(tmp_path / "graph.json"),
                "rpl001_cases.py",
            ]
        )
        assert rc == 2

    def test_explain_prints_the_taint_path(self, capsys):
        rc = main(
            [
                "lint",
                "--root", str(FIXTURES),
                "--no-baseline",
                "--select", "RPL008",
                "--explain", "RPL008:rpl008_cases.py:35",
                "rpl008_cases.py",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "source time.time at rpl008_cases.py:19" in out
        assert "through rpl008_cases.launder()" in out
        assert "sink json.dumps at rpl008_cases.py:35" in out

    def test_explain_unmatched_location_fails(self, capsys):
        rc = main(
            [
                "lint",
                "--root", str(FIXTURES),
                "--no-baseline",
                "--select", "RPL008",
                "--explain", "RPL008:rpl008_cases.py:1",
                "rpl008_cases.py",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "no finding RPL008 at rpl008_cases.py:1" in out

    def test_explain_malformed_spec_is_usage_error(self, capsys):
        rc = main(["lint", "--explain", "RPL008-rpl008_cases.py-35"])
        assert rc == 2

    def test_summary_cache_round_trip(self, tmp_path, capsys):
        cache = tmp_path / "summaries.json"
        argv = [
            "lint",
            "--root", str(FIXTURES),
            "--no-baseline",
            "--select", "RPL010",
            "--summary-cache", str(cache),
            "rpl010_cases.py",
        ]
        assert main(argv) == 1
        first = cache.read_bytes()
        assert main(argv) == 1
        assert cache.read_bytes() == first


# ----------------------------------------------------------------------
# Self-check: the live tree matches the committed baseline exactly
# ----------------------------------------------------------------------
class TestLiveTreeSelfCheck:
    def test_live_tree_matches_committed_baseline(self):
        """The tree the repo ships is lint-clean against LINT_BASELINE.json.

        Zero new findings (no unreviewed violation slipped in) and zero
        stale entries (every baselined finding still exists) — the exact
        gate the CI ``static-analysis`` job enforces.
        """
        baseline = load_baseline(REPO_ROOT / DEFAULT_BASELINE)
        report = run_lint(
            root=REPO_ROOT, targets=DEFAULT_TARGETS, baseline=baseline
        )
        assert [f.format() for f in report.new] == []
        assert [e.format() for e in report.stale] == []

    def test_committed_baseline_is_empty(self):
        """Every pre-existing finding was fixed or justified inline; keep
        it that way (grandfather via the baseline only with review)."""
        baseline = load_baseline(REPO_ROOT / DEFAULT_BASELINE)
        assert baseline == Counter()

    def test_every_live_suppression_has_a_reason(self):
        # run_lint already turns reasonless directives into RPL000 meta
        # findings; assert the live tree has none (belt and braces on top
        # of the baseline match above).
        report = run_lint(
            root=REPO_ROOT, targets=DEFAULT_TARGETS, baseline=Counter()
        )
        assert [
            f.format() for f in report.findings if f.code == META_CODE
        ] == []


# ----------------------------------------------------------------------
# Regressions for the violations this PR fixed (rather than suppressed)
# ----------------------------------------------------------------------
class TestFixedViolationsStayFixed:
    """Each site fixed for RPL001/RPL002/RPL004 is pinned by linting the
    exact file: reintroducing the hazard re-creates the finding."""

    @pytest.mark.parametrize(
        "rel",
        [
            # RPL002: wall-seconds summed over sorted keys, not dict order.
            "src/repro/cli.py",
            # RPL002: SiA budget summed over sorted frozen-job keys.
            "src/repro/scheduler/baselines/sia.py",
            # RPL002: completed_keys from a sorted glob; RPL004: dumps
            # with allow_nan=False.
            "src/repro/experiments/store.py",
            # RPL004: canonical digest payload rejects NaN.
            "src/repro/experiments/spec.py",
            # RPL004: trace/result writers reject NaN at the encoder.
            "src/repro/sim/serialization.py",
            # RPL004: bench emitter fixed in the examples/benchmarks audit.
            "benchmarks/bench_sim_speed.py",
        ],
    )
    def test_fixed_file_stays_clean(self, rel):
        # Subset lint with whole-tree project context — the same
        # semantics as ``repro lint --paths`` (a file's RPL010 verdict
        # depends on its callers, which a one-file project cannot see).
        report = run_lint(
            root=REPO_ROOT,
            targets=(rel,),
            project_targets=DEFAULT_TARGETS,
            baseline=Counter(),
        )
        assert [f.format() for f in report.new] == []

    def test_cli_entry_points_contain_injected_faults(self):
        """RPL010: ``cmd_simulate``/``cmd_compare`` must catch
        :class:`InjectedFault` escaping ``execute_run`` and convert it to
        an incident record + exit 3.  Linting the CLI together with the
        modules that define the seams re-creates the original findings if
        the containment handler is ever removed."""
        report = run_lint(
            root=REPO_ROOT,
            targets=(
                "src/repro/cli.py",
                "src/repro/experiments",
                "src/repro/faults",
            ),
            baseline=Counter(),
        )
        assert [f.format() for f in report.new] == []

    def test_simulate_converts_injected_fault_to_incident_record(
        self, capsys
    ):
        # The behavioral half of the RPL010 fix: a run killed by an
        # injected fault prints a deterministic incident record and exits
        # 3 instead of dying with a raw traceback.
        rc = main(
            [
                "simulate",
                "--policy", "rubick",
                "--jobs", "2",
                "--seed", "0",
                "--faults", "chaos-smoke",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 3
        assert "run terminated by injected fault" in out
        record = json.loads(out.partition("incident record:")[2])
        assert record["error"] == "InjectedCrash"
        assert "seam=worker-crash" in record["message"]
        # The digest hashes frame coordinates: stable across invocations
        # (asserted elsewhere), but not pinnable against unrelated edits.
        assert len(record["traceback_digest"]) == 12
        assert set(record["traceback_digest"]) <= set("0123456789abcdef")

    def test_run_store_rejects_nan_meta(self, tmp_path):
        # allow_nan=False is live, not decorative: a NaN that reaches a
        # raw writer fails loudly instead of emitting non-RFC-8259 JSON.
        from repro.experiments.store import RunStore

        store = RunStore(tmp_path)
        store.append_meta({"event": "refit", "gain": 1.5})
        with pytest.raises(ValueError):
            store.append_meta({"event": "refit", "gain": float("nan")})

    def test_run_store_completed_keys(self, tmp_path):
        from repro.experiments.store import RunStore

        store = RunStore(tmp_path)
        for key in ("b-run", "a-run", "c-run"):
            store.path_for(key).write_text("{}\n")
        assert store.completed_keys() == {"a-run", "b-run", "c-run"}
