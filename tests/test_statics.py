"""The invariant linter (``repro lint``): rules, suppressions, baseline, CLI.

Each rule is exercised against a dedicated fixture under
``tests/data/statics/`` with positive cases (must be found), negative
cases (compliant idioms must stay silent), and a suppressed case (inline
directive with a written reason).  The fixture tests are written so that
disabling a rule makes its test fail: every expectation counts concrete
positives.

The self-check tests at the bottom are the other half of the CI gate:
they pin the *live tree* against the committed ``LINT_BASELINE.json``, so
a new violation (or a fixed-but-still-baselined one) fails the suite even
before the dedicated ``static-analysis`` CI job runs.
"""

from __future__ import annotations

import ast
import json
from collections import Counter
from pathlib import Path

import pytest

from repro.cli import main
from repro.statics import (
    DEFAULT_BASELINE,
    DEFAULT_TARGETS,
    META_CODE,
    BaselineEntry,
    Finding,
    ImportMap,
    all_rules,
    load_baseline,
    run_lint,
    rules_by_code,
    save_baseline,
    split_against_baseline,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "data" / "statics"


def lint_fixture(name: str, rules=None):
    """Lint one fixture file with no baseline; returns the full report."""
    return run_lint(
        root=FIXTURES,
        targets=(name,),
        rules=rules,
        baseline=Counter(),
    )


def codes_of(report) -> list[str]:
    return [f.code for f in report.findings]


# ----------------------------------------------------------------------
# Per-rule fixtures: positives found, negatives silent, suppression honored
# ----------------------------------------------------------------------
#: (fixture, rule code, count of positive findings, substrings that must
#: each appear in exactly one finding's offending-line content)
RULE_CASES = [
    (
        "rpl001_cases.py",
        "RPL001",
        5,
        ["clock.time()", "datetime.now()", "random.random()",
         "np.random.exponential", "clock.perf_counter()"],
    ),
    (
        "rpl002_cases.py",
        "RPL002",
        6,
        ["wall_seconds.values()", "x * 0.5", "sum(set(xs))",
         "os.listdir(path)]", "glob.glob(pattern)", "rglob"],
    ),
    (
        "rpl003_cases.py",
        "RPL003",
        6,
        ["node.up = False", "node.used_gpus += 4",
         'node.allocations["job-1"] = share',
         'del node.allocations["job-1"]', ".pop", "_notify"],
    ),
    (
        "rpl004_cases.py",
        "RPL004",
        4,
        ["def widget_to_dict", "def to_dict", "json.dump(payload, fh)",
         "json.dumps(payload, indent=1)"],
    ),
    (
        "rpl005_cases.py",
        "RPL005",
        2,
        ["self._best_cache: dict = {}", "def positive_lru_over_store"],
    ),
    (
        "rpl006_cases.py",
        "RPL006",
        1,
        ['object.__setattr__(self, "value", self.value + 1)'],
    ),
    (
        "rpl007_cases.py",
        "RPL007",
        3,
        ["except Exception:", "except:", "(ValueError, Exception)"],
    ),
]


class TestRuleFixtures:
    @pytest.mark.parametrize(
        "fixture,code,count,anchors",
        RULE_CASES,
        ids=[c[1] for c in RULE_CASES],
    )
    def test_positives_found_negatives_silent(
        self, fixture, code, count, anchors
    ):
        report = lint_fixture(fixture)
        found = [f for f in report.findings if f.code == code]
        assert len(found) == count, [f.format() for f in report.findings]
        # Every finding sits on a positive_* line (or the decorated def /
        # memo-init it anchors to), never on a negative_* case.
        for finding in found:
            assert "negative" not in finding.content
            assert "suppressed" not in finding.content
        # Each anchor substring identifies exactly one distinct positive.
        for anchor in anchors:
            hits = [f for f in found if anchor in f.content]
            assert len(hits) == 1, (anchor, [f.content for f in found])
        # No stray findings of other codes (the fixtures are single-rule
        # by construction), and no unused-suppression meta noise.
        assert set(codes_of(report)) == {code}

    @pytest.mark.parametrize(
        "fixture,code,count,anchors",
        RULE_CASES,
        ids=[c[1] for c in RULE_CASES],
    )
    def test_suppressed_case_is_suppressed(self, fixture, code, count, anchors):
        report = lint_fixture(fixture)
        assert report.suppressed == 1
        # The directive was *used*: no RPL000 unused-suppression finding.
        assert META_CODE not in codes_of(report)

    @pytest.mark.parametrize(
        "fixture,code,count,anchors",
        RULE_CASES,
        ids=[c[1] for c in RULE_CASES],
    )
    def test_fixture_detects_rule_disablement(
        self, fixture, code, count, anchors
    ):
        """With the rule deselected the positives vanish — proving the
        findings in the sibling test come from *this* rule, not another."""
        others = tuple(r for r in all_rules() if r.code != code)
        report = lint_fixture(fixture, rules=others)
        assert code not in codes_of(report)
        # ...and its now-pointless suppression is called out as unused.
        assert META_CODE in codes_of(report)

    def test_rule_registry_is_complete_and_sorted(self):
        codes = [r.code for r in all_rules()]
        assert codes == sorted(codes)
        assert codes == [
            "RPL001", "RPL002", "RPL003", "RPL004", "RPL005", "RPL006",
            "RPL007",
        ]
        with pytest.raises(ValueError):
            rules_by_code(["RPL999"])


# ----------------------------------------------------------------------
# Suppression contract (RPL000 meta findings)
# ----------------------------------------------------------------------
class TestSuppressionContract:
    @pytest.fixture()
    def report(self):
        return lint_fixture("rpl000_cases.py")

    def test_reasonless_suppression_does_not_suppress(self, report):
        # The directive without ' -- reason' earns an RPL000 *and* leaves
        # the underlying RPL004 finding standing.
        meta = [
            f for f in report.findings
            if f.code == META_CODE and "no written justification" in f.message
        ]
        assert len(meta) == 1
        assert any(
            f.code == "RPL004" and f.line == meta[0].line
            for f in report.findings
        )

    def test_unused_suppression_is_flagged(self, report):
        assert any(
            f.code == META_CODE and "matches no finding" in f.message
            for f in report.findings
        )

    def test_malformed_directive_is_flagged(self, report):
        assert any(
            f.code == META_CODE and "malformed" in f.message
            for f in report.findings
        )

    def test_directive_inside_string_is_ignored(self, report):
        # The string literal mentioning repro-lint produces neither a
        # suppression nor a meta finding.
        in_string = [
            f for f in report.findings if "not a comment" in f.content
        ]
        assert in_string == []

    def test_nothing_suppressed(self, report):
        assert report.suppressed == 0


# ----------------------------------------------------------------------
# Core helpers
# ----------------------------------------------------------------------
class TestImportMap:
    def resolve(self, source: str, expr: str) -> str | None:
        tree = ast.parse(source + "\n" + expr)
        imports = ImportMap(tree)
        last = tree.body[-1]
        assert isinstance(last, ast.Expr)
        return imports.resolve(last.value)

    def test_aliased_module(self):
        assert (
            self.resolve("import time as _t", "_t.perf_counter")
            == "time.perf_counter"
        )

    def test_from_import_symbol(self):
        assert (
            self.resolve("from datetime import datetime", "datetime.now")
            == "datetime.datetime.now"
        )

    def test_submodule_attribute_chain(self):
        assert (
            self.resolve("import numpy as np", "np.random.exponential")
            == "numpy.random.exponential"
        )

    def test_unimported_root_is_none(self):
        assert self.resolve("import os", "job.random.draw") is None


class TestFindingIdentity:
    def test_identity_ignores_line_numbers(self):
        a = Finding("p.py", 10, 1, "RPL001", "m", content="x = time.time()")
        b = Finding("p.py", 99, 5, "RPL001", "m", content="x = time.time()")
        assert a.identity == b.identity

    def test_format_is_clickable(self):
        f = Finding("src/m.py", 3, 7, "RPL002", "msg", content="c")
        assert f.format() == "src/m.py:3:7: RPL002 msg"


# ----------------------------------------------------------------------
# Baseline mechanics
# ----------------------------------------------------------------------
class TestBaseline:
    def findings(self, *contents: str) -> list[Finding]:
        return [
            Finding("mod.py", i + 1, 1, "RPL001", "m", content=c)
            for i, c in enumerate(contents)
        ]

    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        findings = self.findings("a()", "b()")
        save_baseline(path, findings)
        loaded = load_baseline(path)
        assert sum(loaded.values()) == 2
        assert loaded[BaselineEntry("mod.py", "RPL001", "a()")] == 1

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == Counter()

    def test_unknown_format_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"format_version": 99, "findings": []}')
        with pytest.raises(ValueError, match="format version"):
            load_baseline(path)

    def test_split_new_grandfathered_stale(self):
        findings = self.findings("kept()", "introduced()")
        baseline = Counter(
            [
                BaselineEntry("mod.py", "RPL001", "kept()"),
                BaselineEntry("mod.py", "RPL001", "fixed()"),
            ]
        )
        new, grandfathered, stale = split_against_baseline(findings, baseline)
        assert [f.content for f in new] == ["introduced()"]
        assert [f.content for f in grandfathered] == ["kept()"]
        assert [e.content for e in stale] == ["fixed()"]

    def test_multiset_duplicates_need_two_entries(self):
        # Two identical offending lines, one baseline entry: the second
        # occurrence is new.
        findings = self.findings("dup()", "dup()")
        baseline = Counter([BaselineEntry("mod.py", "RPL001", "dup()")])
        new, grandfathered, stale = split_against_baseline(findings, baseline)
        assert len(grandfathered) == 1
        assert len(new) == 1
        assert stale == []

    def test_baseline_survives_line_drift(self):
        # Same content on a different line still matches its entry.
        moved = [Finding("mod.py", 500, 9, "RPL001", "m", content="kept()")]
        baseline = Counter([BaselineEntry("mod.py", "RPL001", "kept()")])
        new, grandfathered, stale = split_against_baseline(moved, baseline)
        assert new == [] and stale == []


# ----------------------------------------------------------------------
# Engine determinism
# ----------------------------------------------------------------------
class TestEngineDeterminism:
    def test_repeat_runs_identical(self):
        first = lint_fixture("rpl002_cases.py")
        second = lint_fixture("rpl002_cases.py")
        assert first.findings == second.findings
        assert first.as_dict() == second.as_dict()

    def test_findings_sorted_by_location(self):
        report = run_lint(
            root=FIXTURES,
            targets=(".",),
            baseline=Counter(),
        )
        assert report.findings == sorted(report.findings)
        assert report.files_scanned == len(list(FIXTURES.glob("*.py")))


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestLintCli:
    def test_fixture_violations_exit_1(self, capsys):
        rc = main(
            [
                "lint",
                "--root", str(FIXTURES),
                "--no-baseline",
                "rpl001_cases.py",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "RPL001" in out
        assert "5 new finding(s)" in out
        assert "1 suppressed" in out

    def test_select_restricts_rules(self, capsys):
        rc = main(
            [
                "lint",
                "--root", str(FIXTURES),
                "--no-baseline",
                "--select", "RPL004",
                "rpl004_cases.py",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "RPL004" in out and "RPL001" not in out

    def test_unknown_select_is_usage_error(self, capsys):
        rc = main(["lint", "--select", "RPL777"])
        assert rc == 2

    def test_missing_target_is_usage_error(self, capsys):
        rc = main(["lint", "--root", str(FIXTURES), "no/such/dir"])
        assert rc == 2
        assert "not found" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        rc = main(["lint", "--list-rules"])
        out = capsys.readouterr().out
        assert rc == 0
        for code in ("RPL001", "RPL002", "RPL003", "RPL004", "RPL005",
                     "RPL006", "RPL007"):
            assert code in out

    def test_report_artifact(self, tmp_path, capsys):
        artifact = tmp_path / "lint-report.json"
        rc = main(
            [
                "lint",
                "--root", str(FIXTURES),
                "--no-baseline",
                "--report", str(artifact),
                "rpl006_cases.py",
            ]
        )
        assert rc == 1
        doc = json.loads(artifact.read_text())
        assert doc["files_scanned"] == 1
        assert doc["suppressed"] == 1
        assert [row["code"] for row in doc["new"]] == ["RPL006"]
        assert doc["new"][0]["line"] == 14

    def test_baseline_lifecycle(self, tmp_path, capsys):
        """update -> clean gate -> fix -> stale entry fails --check-baseline."""
        target = tmp_path / "mod.py"
        target.write_text("import time\n\nT0 = time.time()\n")

        # A fresh violation fails against the (absent == empty) baseline.
        argv = ["lint", "--root", str(tmp_path), "mod.py"]
        assert main(argv) == 1

        # Grandfather it; the gate goes green without touching the code.
        assert main([*argv, "--update-baseline"]) == 0
        baseline = json.loads((tmp_path / DEFAULT_BASELINE).read_text())
        assert [e["code"] for e in baseline["findings"]] == ["RPL001"]
        assert main([*argv, "--check-baseline"]) == 0

        # Fix the code: the lingering entry is stale — tolerated by a
        # plain run, fatal under --check-baseline.
        target.write_text("T0 = 0.0\n")
        assert main(argv) == 0
        assert main([*argv, "--check-baseline"]) == 1
        assert "stale" in capsys.readouterr().out

        # Regenerating empties the baseline and the gate is green again.
        assert main([*argv, "--update-baseline"]) == 0
        baseline = json.loads((tmp_path / DEFAULT_BASELINE).read_text())
        assert baseline["findings"] == []
        assert main([*argv, "--check-baseline"]) == 0


# ----------------------------------------------------------------------
# Self-check: the live tree matches the committed baseline exactly
# ----------------------------------------------------------------------
class TestLiveTreeSelfCheck:
    def test_live_tree_matches_committed_baseline(self):
        """The tree the repo ships is lint-clean against LINT_BASELINE.json.

        Zero new findings (no unreviewed violation slipped in) and zero
        stale entries (every baselined finding still exists) — the exact
        gate the CI ``static-analysis`` job enforces.
        """
        baseline = load_baseline(REPO_ROOT / DEFAULT_BASELINE)
        report = run_lint(
            root=REPO_ROOT, targets=DEFAULT_TARGETS, baseline=baseline
        )
        assert [f.format() for f in report.new] == []
        assert [e.format() for e in report.stale] == []

    def test_committed_baseline_is_empty(self):
        """Every pre-existing finding was fixed or justified inline; keep
        it that way (grandfather via the baseline only with review)."""
        baseline = load_baseline(REPO_ROOT / DEFAULT_BASELINE)
        assert baseline == Counter()

    def test_every_live_suppression_has_a_reason(self):
        # run_lint already turns reasonless directives into RPL000 meta
        # findings; assert the live tree has none (belt and braces on top
        # of the baseline match above).
        report = run_lint(
            root=REPO_ROOT, targets=DEFAULT_TARGETS, baseline=Counter()
        )
        assert [
            f.format() for f in report.findings if f.code == META_CODE
        ] == []


# ----------------------------------------------------------------------
# Regressions for the violations this PR fixed (rather than suppressed)
# ----------------------------------------------------------------------
class TestFixedViolationsStayFixed:
    """Each site fixed for RPL001/RPL002/RPL004 is pinned by linting the
    exact file: reintroducing the hazard re-creates the finding."""

    @pytest.mark.parametrize(
        "rel",
        [
            # RPL002: wall-seconds summed over sorted keys, not dict order.
            "src/repro/cli.py",
            # RPL002: SiA budget summed over sorted frozen-job keys.
            "src/repro/scheduler/baselines/sia.py",
            # RPL002: completed_keys from a sorted glob; RPL004: dumps
            # with allow_nan=False.
            "src/repro/experiments/store.py",
            # RPL004: canonical digest payload rejects NaN.
            "src/repro/experiments/spec.py",
            # RPL004: trace/result writers reject NaN at the encoder.
            "src/repro/sim/serialization.py",
            # RPL004: bench emitter fixed in the examples/benchmarks audit.
            "benchmarks/bench_sim_speed.py",
        ],
    )
    def test_fixed_file_stays_clean(self, rel):
        report = run_lint(
            root=REPO_ROOT, targets=(rel,), baseline=Counter()
        )
        assert [f.format() for f in report.new] == []

    def test_run_store_rejects_nan_meta(self, tmp_path):
        # allow_nan=False is live, not decorative: a NaN that reaches a
        # raw writer fails loudly instead of emitting non-RFC-8259 JSON.
        from repro.experiments.store import RunStore

        store = RunStore(tmp_path)
        store.append_meta({"event": "refit", "gain": 1.5})
        with pytest.raises(ValueError):
            store.append_meta({"event": "refit", "gain": float("nan")})

    def test_run_store_completed_keys(self, tmp_path):
        from repro.experiments.store import RunStore

        store = RunStore(tmp_path)
        for key in ("b-run", "a-run", "c-run"):
            store.path_for(key).write_text("{}\n")
        assert store.completed_keys() == {"a-run", "b-run", "c-run"}
