"""Plan selectors: the variant-defining plan restrictions."""

from __future__ import annotations

import pytest

from repro.cluster import PAPER_CLUSTER, ResourceVector
from repro.models import GPT2, LLAMA2_7B, ROBERTA
from repro.perfmodel import ResourceShape
from repro.plans import ExecutionPlan, ZeroStage
from repro.scheduler import (
    BestPlanSelector,
    FixedPlanSelector,
    Job,
    JobSpec,
    ScaledDpSelector,
    SensitivityAnalyzer,
)


@pytest.fixture(scope="module")
def analyzer(fitted_store):
    return SensitivityAnalyzer(fitted_store, PAPER_CLUSTER)


def _job(model=GPT2, gpus=8, plan=None) -> Job:
    plan = plan or ExecutionPlan(dp=gpus, ga_steps=max(16 // gpus, 1))
    spec = JobSpec(
        job_id="t", model=model, global_batch=model.global_batch_size,
        requested=ResourceVector(gpus, gpus * 4, 0.0),
        initial_plan=plan, total_samples=1e5, submit_time=0.0,
    )
    return Job(spec=spec)


class TestBestPlanSelector:
    def test_free_to_change_family(self, analyzer):
        selector = BestPlanSelector(analyzer)
        bad = ExecutionPlan(dp=8, zero=ZeroStage.OFFLOAD, ga_steps=2)
        job = _job(plan=bad)
        best = selector.best(job, ResourceShape.packed(8, cpus=32))
        assert best is not None
        assert best.plan != bad


class TestScaledDpSelector:
    def test_keeps_zero_flag(self, analyzer):
        selector = ScaledDpSelector(analyzer)
        plan = ExecutionPlan(dp=4, zero=ZeroStage.ZERO_DP, ga_steps=4)
        job = _job(gpus=4, plan=plan)
        best = selector.best(job, ResourceShape.packed(8, cpus=32))
        assert best is not None
        assert best.plan.zero == ZeroStage.ZERO_DP
        assert best.plan.dp == 8

    def test_keeps_tp_pp_shape(self, analyzer):
        selector = ScaledDpSelector(analyzer)
        plan = ExecutionPlan(dp=1, tp=4, pp=2, micro_batches=16, gc=True)
        job = _job(model=LLAMA2_7B, gpus=8, plan=plan)
        best = selector.best(job, ResourceShape.packed(16, cpus=64))
        assert best is not None
        assert (best.plan.tp, best.plan.pp) == (4, 2)
        assert best.plan.dp == 2

    def test_non_multiple_counts_infeasible(self, analyzer):
        selector = ScaledDpSelector(analyzer)
        plan = ExecutionPlan(dp=1, tp=4, pp=2, micro_batches=16, gc=True)
        job = _job(model=LLAMA2_7B, gpus=8, plan=plan)
        assert selector.best(job, ResourceShape.packed(12, cpus=48)) is None

    def test_submitted_plan_always_candidate_at_own_count(self, analyzer):
        selector = ScaledDpSelector(analyzer)
        # A shallow pipeline (m < p) that the generic m-grid would miss.
        plan = ExecutionPlan(dp=4, pp=8, micro_batches=4, gc=True)
        job = _job(model=GPT2, gpus=32, plan=plan)
        best = selector.best(job, ResourceShape.packed(32, cpus=128))
        assert best is not None

    def test_curve_cached_per_initial_plan(self, analyzer):
        selector = ScaledDpSelector(analyzer)
        job_a = _job(gpus=4, plan=ExecutionPlan(dp=4, ga_steps=4))
        job_b = _job(gpus=4, plan=ExecutionPlan(dp=4, zero=ZeroStage.ZERO_DP, ga_steps=4))
        assert selector.curve(job_a) is selector.curve(job_a)
        assert selector.curve(job_a) is not selector.curve(job_b)


class TestFixedPlanSelector:
    def test_only_exact_gpu_count(self, analyzer):
        selector = FixedPlanSelector(analyzer)
        job = _job(gpus=8)
        assert selector.best(job, ResourceShape.packed(8, cpus=32)) is not None
        assert selector.best(job, ResourceShape.packed(4, cpus=16)) is None

    def test_curve_single_spike(self, analyzer):
        selector = FixedPlanSelector(analyzer)
        job = _job(gpus=8)
        curve = selector.curve(job)
        assert curve.raw[8] is not None
        assert all(curve.raw[g] is None for g in range(1, 8))
        # Envelope is flat at the spike value beyond 8.
        assert curve.throughput_at(12) == curve.throughput_at(8)

    def test_tp_respects_node_share(self, analyzer):
        selector = FixedPlanSelector(analyzer)
        plan = ExecutionPlan(dp=1, tp=8)
        job = _job(model=LLAMA2_7B, gpus=8, plan=plan)
        ragged = ResourceShape(gpus=8, num_nodes=2, min_gpus_per_node=4, cpus=32)
        assert selector.best(job, ragged) is None


class TestSlopeHelpers:
    def test_cpu_slope_floor_guard(self, analyzer):
        selector = BestPlanSelector(analyzer)
        job = _job(model=ROBERTA, gpus=4,
                   plan=ExecutionPlan(dp=4, ga_steps=4))
        shape = ResourceShape.packed(4, cpus=4)
        assert selector.cpu_slope_down(job, shape) == float("inf")

    def test_gpu_slope_down_zero_at_zero(self, analyzer):
        selector = BestPlanSelector(analyzer)
        job = _job()
        assert selector.gpu_slope_down(job, 0) == 0.0
