"""External-trace adapters: Philly CSV / Helios JSONL ingestion."""

from __future__ import annotations

import pytest

from repro.cluster import ClusterSpec, NodeSpec
from repro.errors import TraceAdapterError
from repro.oracle import SyntheticTestbed
from repro.perfmodel import ResourceShape
from repro.sim.serialization import save_trace, trace_to_dict
from repro.workloads import (
    load_external_trace,
    load_helios_jsonl,
    load_philly_csv,
)

CLUSTER = ClusterSpec(num_nodes=2, node=NodeSpec(num_gpus=8))
PHILLY = "tests/data/philly_mini.csv"
HELIOS = "tests/data/helios_mini.jsonl"


@pytest.fixture(scope="module")
def testbed():
    return SyntheticTestbed(CLUSTER, seed=0)


class TestPhillyCsv:
    def test_loads_completed_rows_only(self, testbed):
        trace = load_philly_csv(PHILLY, cluster=CLUSTER, testbed=testbed)
        # 14 data rows, 2 filtered by status (Killed, Failed).
        assert len(trace) == 12
        assert trace.name == "replay-philly_mini"
        ids = [j.job_id for j in trace]
        assert "philly-0004" not in ids and "philly-0008" not in ids

    def test_submit_times_normalized_and_sorted(self, testbed):
        trace = load_philly_csv(PHILLY, cluster=CLUSTER, testbed=testbed)
        submits = [j.submit_time for j in trace]
        assert submits[0] == 0.0
        assert submits == sorted(submits)

    def test_feasibility_fixup_applied(self, testbed):
        trace = load_philly_csv(PHILLY, cluster=CLUSTER, testbed=testbed)
        for job in trace:
            # The 32-GPU row must have been clamped to the 16-GPU cluster.
            assert job.requested_gpus <= CLUSTER.total_gpus
            shape = ResourceShape.packed(
                job.requested_gpus, cpus=job.requested_gpus * 4
            )
            assert testbed.is_feasible(
                job.model, job.initial_plan, shape, job.global_batch
            ), job.job_id

    def test_gpu_hours_preserved_across_fixup(self, testbed):
        trace = load_philly_csv(PHILLY, cluster=CLUSTER, testbed=testbed)
        by_id = {j.job_id: j for j in trace}
        # Raw row: 32 GPUs x 21600 s = 192 GPU-hours.
        clamped = by_id["philly-0010"]
        assert clamped.requested_gpus < 32
        assert clamped.requested_gpus * clamped.duration == pytest.approx(
            32 * 21600
        )

    def test_deterministic_in_seed(self, testbed):
        a = load_philly_csv(PHILLY, cluster=CLUSTER, seed=3, testbed=testbed)
        b = load_philly_csv(PHILLY, cluster=CLUSTER, seed=3, testbed=testbed)
        c = load_philly_csv(PHILLY, cluster=CLUSTER, seed=4, testbed=testbed)
        assert trace_to_dict(a) == trace_to_dict(b)
        assert trace_to_dict(a) != trace_to_dict(c)

    def test_missing_file(self):
        with pytest.raises(TraceAdapterError, match="no such trace file"):
            load_philly_csv("nope.csv", cluster=CLUSTER)


class TestMalformedRows:
    def write(self, tmp_path, body: str):
        path = tmp_path / "bad.csv"
        path.write_text("job_id,submit_time,gpus,duration,status\n" + body)
        return path

    def test_missing_column_points_at_line(self, tmp_path, testbed):
        path = self.write(tmp_path, "a,0,1,100,Pass\nb,5,,200,Pass\n")
        with pytest.raises(TraceAdapterError, match=r"bad\.csv:3.*gpus"):
            load_philly_csv(path, cluster=CLUSTER, testbed=testbed)

    def test_non_numeric_and_nonpositive_rows(self, tmp_path, testbed):
        for body, match in (
            ("a,0,one,100,Pass\n", "non-numeric"),
            ("a,0,1,-5,Pass\n", "duration must be positive"),
            ("a,0,0,100,Pass\n", "gpus must be >= 1"),
            ("a,yesterday,1,100,Pass\n", "unparsable timestamp"),
        ):
            with pytest.raises(TraceAdapterError, match=match):
                load_philly_csv(
                    self.write(tmp_path, body), cluster=CLUSTER,
                    testbed=testbed,
                )

    def test_duplicate_job_ids_rejected(self, tmp_path, testbed):
        path = self.write(tmp_path, "a,0,1,100,Pass\na,5,2,200,Pass\n")
        with pytest.raises(TraceAdapterError, match="duplicate job id"):
            load_philly_csv(path, cluster=CLUSTER, testbed=testbed)

    def test_skip_mode_drops_bad_rows(self, tmp_path, testbed):
        path = self.write(
            tmp_path,
            "a,0,1,100,Pass\nb,5,,200,Pass\nc,9,2,300,Pass\n",
        )
        trace = load_philly_csv(
            path, cluster=CLUSTER, on_error="skip", testbed=testbed
        )
        assert [j.job_id for j in trace] == ["a", "c"]

    def test_skip_assignment_is_row_local(self, tmp_path, testbed):
        """Dropping a malformed row never reshuffles its neighbors."""
        clean = self.write(tmp_path, "a,0,1,100,Pass\nc,9,2,300,Pass\n")
        dirty = tmp_path / "dirty.csv"
        dirty.write_text(
            "job_id,submit_time,gpus,duration,status\n"
            "a,0,1,100,Pass\nb,5,,200,Pass\nc,9,2,300,Pass\n"
        )
        a = load_philly_csv(
            clean, cluster=CLUSTER, testbed=testbed, name="same"
        )
        b = load_philly_csv(
            dirty, cluster=CLUSTER, on_error="skip", testbed=testbed,
            name="same",
        )
        assert trace_to_dict(a) == trace_to_dict(b)

    def test_all_rows_unusable(self, tmp_path, testbed):
        path = self.write(tmp_path, "a,0,1,100,Killed\n")
        with pytest.raises(TraceAdapterError, match="no usable job rows"):
            load_philly_csv(path, cluster=CLUSTER, testbed=testbed)


class TestHeliosJsonl:
    def test_loads_and_normalizes_datetimes(self, testbed):
        trace = load_helios_jsonl(HELIOS, cluster=CLUSTER, testbed=testbed)
        assert len(trace) == 7  # 8 rows, 1 FAILED filtered
        submits = [j.submit_time for j in trace]
        assert submits[0] == 0.0
        assert submits == sorted(submits)
        # 08:00:00 -> 08:12:30 is 750 s.
        assert submits[1] == pytest.approx(750.0)

    def test_invalid_json_row(self, tmp_path, testbed):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"job_name": "a"\n')
        with pytest.raises(TraceAdapterError, match=r"bad\.jsonl:1.*JSON"):
            load_helios_jsonl(path, cluster=CLUSTER, testbed=testbed)

    def test_non_object_row(self, tmp_path, testbed):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(TraceAdapterError, match="not an object"):
            load_helios_jsonl(path, cluster=CLUSTER, testbed=testbed)

    def test_textual_timestamps_parse_as_utc(self):
        """Replay must not depend on the host timezone or DST rules."""
        from repro.workloads.adapters import _parse_time

        assert _parse_time("1970-01-01 00:00:00") == 0.0
        # The US DST spring-forward hole (2020-03-08 02:00 local) must not
        # swallow an hour: in UTC these are exactly 2 h apart.
        gap = _parse_time("2020-03-08 03:30:00") - _parse_time(
            "2020-03-08 01:30:00"
        )
        assert gap == 2 * 3600.0


class TestDispatch:
    def test_by_extension(self, testbed, tmp_path):
        csv_trace = load_external_trace(
            PHILLY, cluster=CLUSTER, testbed=testbed
        )
        jsonl_trace = load_external_trace(
            HELIOS, cluster=CLUSTER, testbed=testbed
        )
        assert len(csv_trace) == 12 and len(jsonl_trace) == 7
        # Native .json round-trips through save_trace untouched.
        path = tmp_path / "native.json"
        save_trace(csv_trace, path)
        again = load_external_trace(path, cluster=CLUSTER)
        assert trace_to_dict(again) == trace_to_dict(csv_trace)

    def test_unknown_extension(self):
        with pytest.raises(TraceAdapterError, match="unsupported trace"):
            load_external_trace("trace.parquet", cluster=CLUSTER)
