"""Units and formatting helpers."""

from __future__ import annotations

import pytest

from repro.units import (
    GB,
    GiB,
    HOUR,
    MINUTE,
    fmt_bytes,
    fmt_duration,
    seconds,
)


class TestConstants:
    def test_decimal_vs_binary_bytes(self):
        assert GB == 1e9
        assert GiB == 2**30
        assert GiB > GB

    def test_seconds_builder(self):
        assert seconds(hours=1) == HOUR
        assert seconds(minutes=2, secs=30) == 150.0
        assert seconds(hours=1, minutes=1, secs=1) == 3661.0


class TestFmtBytes:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, "0 B"),
            (512, "512 B"),
            (2048, "2.00 KiB"),
            (3 * GiB, "3.00 GiB"),
            (1.5 * 1024**4, "1.50 TiB"),
        ],
    )
    def test_positive_values(self, value, expected):
        assert fmt_bytes(value) == expected

    def test_negative_value(self):
        assert fmt_bytes(-2048) == "-2.00 KiB"


class TestFmtDuration:
    def test_subminute(self):
        assert fmt_duration(12.34) == "12.3s"

    def test_minutes(self):
        assert fmt_duration(4 * MINUTE + 10) == "4m10s"

    def test_hours(self):
        assert fmt_duration(HOUR + 23 * MINUTE) == "1h23m"

    def test_negative(self):
        assert fmt_duration(-90) == "-1m30s"
