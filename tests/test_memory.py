"""GPU/host memory model: partitioning arithmetic and OOM physics."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster import PAPER_CLUSTER
from repro.models import GPT2, LLAMA2_7B, LLAMA_30B, VIT
from repro.plans import (
    ExecutionPlan,
    ZeroStage,
    estimate_memory,
    fits_gpu,
    host_mem_demand_per_node,
    min_cpus_demand,
)
from repro.units import GiB

BUDGET = PAPER_CLUSTER.node.usable_gpu_mem


class TestModelStatePartitioning:
    def test_plain_dp_holds_full_states(self):
        est = estimate_memory(GPT2, ExecutionPlan(dp=8, ga_steps=2), 16)
        # 16 bytes/param mixed-precision Adam: 2 + 2 + 12.
        assert est.weights == pytest.approx(2 * GPT2.param_count)
        assert est.gradients == pytest.approx(2 * GPT2.param_count)
        assert est.optimizer == pytest.approx(12 * GPT2.param_count)

    def test_tp_pp_shard_states(self):
        plan = ExecutionPlan(dp=1, tp=5, pp=8, micro_batches=8)
        est = estimate_memory(GPT2, plan, 16)
        assert est.weights == pytest.approx(2 * GPT2.param_count / 40)
        assert est.optimizer == pytest.approx(12 * GPT2.param_count / 40)

    def test_zero_dp_partitions_optimizer_and_grads(self):
        base = estimate_memory(GPT2, ExecutionPlan(dp=8, ga_steps=2), 16)
        zero = estimate_memory(
            GPT2, ExecutionPlan(dp=8, zero=ZeroStage.ZERO_DP, ga_steps=2), 16
        )
        assert zero.optimizer == pytest.approx(base.optimizer / 8)
        assert zero.gradients < base.gradients
        assert zero.weights == pytest.approx(base.weights)  # ZeRO-2 keeps weights

    def test_offload_clears_gpu_optimizer_moves_to_host(self):
        plan = ExecutionPlan(dp=1, zero=ZeroStage.OFFLOAD, ga_steps=16)
        est = estimate_memory(GPT2, plan, 16)
        assert est.optimizer == 0.0
        assert est.host_total > 14 * GPT2.param_count  # 14 B/param + base
        assert est.gradients < 2 * GPT2.param_count / 10  # one-layer bucket


class TestActivations:
    def test_ga_shrinks_activations(self):
        no_ga = estimate_memory(GPT2, ExecutionPlan(dp=8, ga_steps=1), 16)
        ga = estimate_memory(GPT2, ExecutionPlan(dp=8, ga_steps=2), 16)
        assert ga.activations < no_ga.activations

    def test_gc_shrinks_activations_dramatically(self):
        plain = estimate_memory(GPT2, ExecutionPlan(dp=8), 16)
        gc = estimate_memory(GPT2, ExecutionPlan(dp=8, gc=True), 16)
        assert gc.activations < plain.activations / 3

    def test_tp_shards_activations(self):
        t1 = estimate_memory(LLAMA2_7B, ExecutionPlan(dp=1, tp=1, pp=2, micro_batches=32), 32)
        t4 = estimate_memory(LLAMA2_7B, ExecutionPlan(dp=1, tp=4, pp=2, micro_batches=32), 32)
        assert t4.activations == pytest.approx(t1.activations / 4, rel=0.01)

    def test_vision_model_has_no_logits_buffer(self):
        est = estimate_memory(VIT, ExecutionPlan(dp=8), 256)
        assert est.logits == 0.0

    def test_lm_logits_buffer_positive(self):
        est = estimate_memory(GPT2, ExecutionPlan(dp=8), 16)
        assert est.logits > 0


class TestPaperPhysics:
    """The OOM behaviours the paper's narrative depends on."""

    def test_gpt2_fits_8_gpus_plain_dp(self):
        assert fits_gpu(GPT2, ExecutionPlan(dp=8), 16, BUDGET)

    def test_gpt2_single_gpu_needs_ga_or_gc(self):
        assert not fits_gpu(GPT2, ExecutionPlan(dp=1), 16, BUDGET)
        assert fits_gpu(GPT2, ExecutionPlan(dp=1, ga_steps=16), 16, BUDGET)
        assert fits_gpu(GPT2, ExecutionPlan(dp=1, gc=True), 16, BUDGET)

    def test_llama7b_plain_dp_oom_anywhere(self):
        # 16 B/param × 6.7B = 107 GB of states alone: no DP-family plan
        # without ZeRO fits an 80 GB card.
        for dp in (1, 8):
            plan = ExecutionPlan(dp=dp, ga_steps=32 // dp, gc=True)
            assert not fits_gpu(LLAMA2_7B, plan, 32, BUDGET)

    def test_llama7b_offload_fits_one_gpu(self):
        # Paper Fig. 7: ZeRO-Offload is the only feasible 1-GPU plan.
        plan = ExecutionPlan(dp=1, zero=ZeroStage.OFFLOAD, ga_steps=32, gc=True)
        assert fits_gpu(LLAMA2_7B, plan, 32, BUDGET)

    def test_llama7b_zero_dp_needs_two_gpus(self):
        one = ExecutionPlan(dp=1, zero=ZeroStage.ZERO_DP, ga_steps=32, gc=True)
        two = ExecutionPlan(dp=2, zero=ZeroStage.ZERO_DP, ga_steps=16, gc=True)
        assert not fits_gpu(LLAMA2_7B, one, 32, BUDGET)
        assert fits_gpu(LLAMA2_7B, two, 32, BUDGET)

    def test_llama30b_needs_deep_sharding(self):
        small = ExecutionPlan(dp=1, tp=4, pp=2, micro_batches=2)
        assert not fits_gpu(LLAMA_30B, small, 64, BUDGET)
        deep = ExecutionPlan(dp=1, tp=4, pp=2, micro_batches=64, gc=True)
        assert fits_gpu(LLAMA_30B, deep, 64, BUDGET)


class TestHostDemand:
    def test_offload_host_demand_scales_with_node_share(self):
        plan = ExecutionPlan(dp=4, zero=ZeroStage.OFFLOAD, ga_steps=4)
        full = host_mem_demand_per_node(GPT2, plan, 16, gpus_on_node=4)
        half = host_mem_demand_per_node(GPT2, plan, 16, gpus_on_node=2)
        assert half == pytest.approx(full / 2)

    def test_non_offload_host_demand_is_small(self):
        plan = ExecutionPlan(dp=4, ga_steps=4)
        demand = host_mem_demand_per_node(GPT2, plan, 16, gpus_on_node=4)
        assert demand < 8 * GiB

    def test_min_cpus_one_per_gpu(self):
        assert min_cpus_demand(ExecutionPlan(dp=4), 4) == 4
        assert min_cpus_demand(ExecutionPlan(), 0) == 1


class TestMonotonicityProperties:
    @given(dp=st.sampled_from([1, 2, 4, 8]), ga=st.sampled_from([1, 2]))
    def test_gpu_total_positive(self, dp, ga):
        if (16 // dp) % ga != 0:
            return
        est = estimate_memory(GPT2, ExecutionPlan(dp=dp, ga_steps=ga), 16)
        assert est.gpu_total > 0
        assert est.gpu_total == pytest.approx(sum(est.breakdown().values()))

    @given(tp=st.sampled_from([1, 2, 4, 8]))
    def test_more_tp_never_more_weights(self, tp):
        plan = ExecutionPlan(dp=1, tp=tp, ga_steps=32)
        est = estimate_memory(LLAMA2_7B, plan, 32)
        base = estimate_memory(LLAMA2_7B, ExecutionPlan(dp=1, ga_steps=32), 32)
        assert est.weights <= base.weights
