"""Synthetic testbed: determinism, noise, feasibility, profiling."""

from __future__ import annotations

import pytest

from repro.cluster import PAPER_CLUSTER
from repro.errors import OutOfMemoryError
from repro.models import GPT2, LLAMA2_7B, ROBERTA
from repro.oracle import (
    SyntheticTestbed,
    collect_samples,
    default_profile_configs,
)
from repro.perfmodel import ResourceShape
from repro.plans import ExecutionPlan, ZeroStage
from repro.units import GB

PLAN8 = ExecutionPlan(dp=8, ga_steps=2)
SHAPE8 = ResourceShape.packed(8, cpus=32)


class TestDeterminism:
    def test_true_throughput_deterministic(self, paper_testbed):
        a = paper_testbed.true_throughput(GPT2, PLAN8, SHAPE8, 16)
        b = paper_testbed.true_throughput(GPT2, PLAN8, SHAPE8, 16)
        assert a == b

    def test_same_seed_same_truth(self):
        a = SyntheticTestbed(PAPER_CLUSTER, seed=5)
        b = SyntheticTestbed(PAPER_CLUSTER, seed=5)
        assert a.true_throughput(GPT2, PLAN8, SHAPE8, 16) == b.true_throughput(
            GPT2, PLAN8, SHAPE8, 16
        )

    def test_different_seed_different_truth(self):
        a = SyntheticTestbed(PAPER_CLUSTER, seed=5)
        b = SyntheticTestbed(PAPER_CLUSTER, seed=6)
        assert a.true_throughput(GPT2, PLAN8, SHAPE8, 16) != b.true_throughput(
            GPT2, PLAN8, SHAPE8, 16
        )

    def test_measurement_noise_varies_by_run_id(self, paper_testbed):
        m0 = paper_testbed.measure(GPT2, PLAN8, SHAPE8, 16, run_id=0)
        m1 = paper_testbed.measure(GPT2, PLAN8, SHAPE8, 16, run_id=1)
        true = paper_testbed.true_throughput(GPT2, PLAN8, SHAPE8, 16)
        assert m0 != m1
        assert abs(m0 - true) / true < 0.10  # noise is small

    def test_profiled_fwd_ref_positive(self, paper_testbed):
        assert paper_testbed.profiled_fwd_ref(GPT2) > 0
        # Available even for models that cannot fit one GPU.
        assert paper_testbed.profiled_fwd_ref(LLAMA2_7B) > 0


class TestFeasibility:
    def test_oom_raises(self, paper_testbed):
        plan = ExecutionPlan(dp=1)  # GPT-2 b=16 without GA/GC: activations OOM
        shape = ResourceShape.packed(1, cpus=4)
        with pytest.raises(OutOfMemoryError):
            paper_testbed.true_throughput(GPT2, plan, shape, 16)

    def test_shape_plan_mismatch_rejected(self, paper_testbed):
        with pytest.raises(OutOfMemoryError):
            paper_testbed.check_feasible(GPT2, PLAN8, ResourceShape.packed(4, cpus=4), 16)

    def test_host_memory_override(self, paper_testbed):
        plan = ExecutionPlan(dp=1, zero=ZeroStage.OFFLOAD, ga_steps=16)
        shape = ResourceShape.packed(1, cpus=8)
        assert paper_testbed.is_feasible(GPT2, plan, shape, 16)
        # A 10 GB host cap kills ZeRO-Offload (Fig. 3b's final stage).
        assert not paper_testbed.is_feasible(
            GPT2, plan, shape, 16, host_mem_override=10 * GB
        )

    def test_gpu_memory_override(self, paper_testbed):
        assert not paper_testbed.is_feasible(
            GPT2, PLAN8, SHAPE8, 16, gpu_mem_override=10 * GB
        )


class TestPhysicalShape:
    """Directional behaviours the scheduler relies on."""

    def test_dp_scaling_speeds_up(self, paper_testbed):
        thr = {}
        for dp in (2, 4, 8):
            plan = ExecutionPlan(dp=dp, ga_steps=16 // dp)
            shape = ResourceShape.packed(dp, cpus=4 * dp)
            thr[dp] = paper_testbed.true_throughput(GPT2, plan, shape, 16)
        assert thr[8] > thr[4] > thr[2]

    def test_offload_much_slower_than_zero_dp_for_small_models(self, paper_testbed):
        batch = ROBERTA.global_batch_size
        shape = ResourceShape.packed(4, cpus=16)
        zero = paper_testbed.true_throughput(
            ROBERTA, ExecutionPlan(dp=4, zero=ZeroStage.ZERO_DP), shape, batch
        )
        off = paper_testbed.true_throughput(
            ROBERTA, ExecutionPlan(dp=4, zero=ZeroStage.OFFLOAD), shape, batch
        )
        assert off < zero  # "ZeRO-Offload nearly always performs the worst"

    def test_more_cpus_speed_offload(self, paper_testbed):
        plan = ExecutionPlan(dp=1, zero=ZeroStage.OFFLOAD, ga_steps=32, gc=True)
        few = paper_testbed.true_throughput(
            LLAMA2_7B, plan, ResourceShape.packed(1, cpus=4), 32
        )
        many = paper_testbed.true_throughput(
            LLAMA2_7B, plan, ResourceShape.packed(1, cpus=16), 32
        )
        assert many > few


class TestProfiler:
    def test_default_configs_meet_paper_requirements(self, paper_testbed):
        for model in (GPT2, ROBERTA, LLAMA2_7B):
            configs = default_profile_configs(
                paper_testbed, model, model.global_batch_size
            )
            assert len(configs) >= 7
            offload = [c for c in configs if c.plan.uses_offload]
            assert len(offload) >= 3
            # CPU variation across offload runs identifies k_opt_off.
            assert len({c.shape.cpus for c in offload}) >= 2

    def test_collect_samples_all_positive(self, paper_testbed):
        configs = default_profile_configs(paper_testbed, GPT2, 16)
        samples = collect_samples(paper_testbed, GPT2, 16, configs)
        assert len(samples) == len(configs)
        assert all(s.throughput > 0 for s in samples)

    def test_build_perf_model_quality(self, gpt2_perf):
        perf, report = gpt2_perf
        assert report.rmsle < 0.1
        assert report.num_offload_samples >= 3
