"""Trace/result JSON round-trips."""

from __future__ import annotations

import json

import pytest

from repro.cluster import PAPER_CLUSTER
from repro.oracle import SyntheticTestbed
from repro.plans import ExecutionPlan, ZeroStage
from repro.scheduler import rubick_n
from repro.sim import Simulator, WorkloadConfig, generate_trace
from repro.sim.serialization import (
    load_result,
    load_trace,
    plan_from_dict,
    plan_to_dict,
    result_to_dict,
    save_result,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)


@pytest.fixture(scope="module")
def trace():
    testbed = SyntheticTestbed(PAPER_CLUSTER, seed=13)
    return generate_trace(
        WorkloadConfig(num_jobs=10, seed=13, span=1800.0), testbed
    )


class TestPlanRoundTrip:
    @pytest.mark.parametrize(
        "plan",
        [
            ExecutionPlan(),
            ExecutionPlan(dp=4, ga_steps=2, gc=True),
            ExecutionPlan(dp=2, zero=ZeroStage.OFFLOAD, ga_steps=8),
            ExecutionPlan(dp=2, tp=4, pp=2, micro_batches=8, gc=True),
        ],
    )
    def test_round_trip(self, plan):
        assert plan_from_dict(plan_to_dict(plan)) == plan


class TestTraceRoundTrip:
    def test_dict_round_trip(self, trace):
        again = trace_from_dict(trace_to_dict(trace))
        assert again.jobs == trace.jobs
        assert again.name == trace.name

    def test_file_round_trip(self, trace, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(trace, path)
        again = load_trace(path)
        assert again.jobs == trace.jobs

    def test_file_is_plain_json(self, trace, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(trace, path)
        data = json.loads(path.read_text())
        assert data["format_version"] == 1
        assert len(data["jobs"]) == len(trace)

    def test_version_mismatch_rejected(self, trace):
        data = trace_to_dict(trace)
        data["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            trace_from_dict(data)


class TestResultRoundTrip:
    def test_round_trip_preserves_metrics(self, trace, tmp_path):
        sim = Simulator(
            PAPER_CLUSTER, rubick_n(),
            testbed=SyntheticTestbed(PAPER_CLUSTER, seed=13), seed=13,
        )
        result = sim.run(trace)
        path = tmp_path / "result.json"
        save_result(result, path)
        again = load_result(path)
        assert again.policy_name == result.policy_name
        assert again.avg_jct() == pytest.approx(result.avg_jct())
        assert again.p99_jct() == pytest.approx(result.p99_jct())
        assert again.makespan == pytest.approx(result.makespan)
        assert len(again.records) == len(result.records)

    def test_result_dict_has_summary(self, trace):
        sim = Simulator(
            PAPER_CLUSTER, rubick_n(),
            testbed=SyntheticTestbed(PAPER_CLUSTER, seed=13), seed=13,
        )
        result = sim.run(trace)
        data = result_to_dict(result)
        assert "avg_jct_h" in data["summary"]

    def test_reconfig_gpu_seconds_round_trip_and_legacy_default(self, trace):
        from repro.sim.serialization import result_from_dict

        sim = Simulator(
            PAPER_CLUSTER, rubick_n(),
            testbed=SyntheticTestbed(PAPER_CLUSTER, seed=13), seed=13,
        )
        result = sim.run(trace)
        data = result_to_dict(result)
        again = result_from_dict(data)
        assert [r.reconfig_gpu_seconds for r in again.records] == [
            r.reconfig_gpu_seconds for r in result.records
        ]
        # Results written before the field existed still load (as 0.0).
        for r in data["records"]:
            r.pop("reconfig_gpu_seconds")
        legacy = result_from_dict(data)
        assert all(r.reconfig_gpu_seconds == 0.0 for r in legacy.records)
