"""Cluster dynamics: event streams, state transitions, engine integration.

Covers the three layers end to end: the `repro.cluster.dynamics` profiles
(determinism, serialization, registry), the `Cluster.remove_node` /
`add_node` transitions (eviction semantics, down-node invisibility), and
the simulator wiring — evictions re-queue through `_requeue` with cleared
placements, the restart penalty is charged once, lost/goodput GPU-hours
sum to the total, failure rounds never take the steady-state short-circuit,
and the fast path stays byte-identical to the reference loop under a
failure/recovery stream (the PR-3 cache audit's regression golden).
"""

from __future__ import annotations

import pytest

from repro.cluster import (
    Cluster,
    ClusterSpec,
    NodeSpec,
    Placement,
    ResourceVector,
)
from repro.cluster.dynamics import (
    NODE_FAIL,
    NODE_RECOVER,
    SCALE_DOWN,
    SCALE_UP,
    ClusterEvent,
    FixedDynamics,
    NoDynamics,
    RandomFailures,
    ScaleSchedule,
    dynamics_from_dict,
    dynamics_to_dict,
    load_cluster_events,
    resolve_dynamics,
    save_cluster_events,
)
from repro.errors import ClusterDynamicsError, PlacementError
from repro.models import all_models
from repro.oracle import SyntheticTestbed, build_perf_model
from repro.scheduler import PerfModelStore
from repro.scheduler.job import JobStatus
from repro.scheduler.registry import POLICIES, make_policy
from repro.sim import Simulator, WorkloadConfig, generate_trace
from repro.sim.events import EventCalendar
from repro.sim.serialization import result_from_dict, result_to_dict
from repro.units import HOUR

CLUSTER = ClusterSpec(num_nodes=2, node=NodeSpec(num_gpus=8, num_cpus=96))
SEED = 11


# ----------------------------------------------------------------------
# Dynamics profiles
# ----------------------------------------------------------------------
class TestDynamicsProfiles:
    def test_event_validation(self):
        with pytest.raises(ClusterDynamicsError):
            ClusterEvent(time=10.0, kind="explode")
        with pytest.raises(ClusterDynamicsError):
            ClusterEvent(time=-1.0, kind=NODE_FAIL, node_id=0)
        with pytest.raises(ClusterDynamicsError):
            ClusterEvent(time=10.0, kind=NODE_FAIL)  # no node_id
        with pytest.raises(ClusterDynamicsError):
            ClusterEvent(time=10.0, kind=SCALE_UP, count=0)

    def test_no_dynamics_is_empty(self):
        assert NoDynamics().events(seed=0, span=1e5, cluster=CLUSTER) == ()

    def test_random_failures_deterministic_and_alternating(self):
        dyn = RandomFailures(mtbf=2 * HOUR, mttr=0.5 * HOUR)
        a = dyn.events(seed=3, span=12 * HOUR, cluster=CLUSTER)
        b = dyn.events(seed=3, span=12 * HOUR, cluster=CLUSTER)
        assert a == b  # pure function of (seed, span, cluster)
        assert a != dyn.events(seed=4, span=12 * HOUR, cluster=CLUSTER)
        assert all(e.time >= 0 for e in a)
        assert list(a) == sorted(a, key=lambda e: e.time)
        # Per node: strictly alternating fail/recover, fail first.
        for node_id in range(CLUSTER.num_nodes):
            kinds = [e.kind for e in a if e.node_id == node_id]
            assert kinds[::2] == [NODE_FAIL] * len(kinds[::2])
            assert kinds[1::2] == [NODE_RECOVER] * len(kinds[1::2])

    def test_random_failures_per_node_streams_are_stable(self):
        """Scaling the cluster must not reshuffle other nodes' histories."""
        dyn = RandomFailures(mtbf=2 * HOUR, mttr=0.5 * HOUR)
        small = dyn.events(seed=3, span=12 * HOUR, cluster=CLUSTER)
        big = dyn.events(
            seed=3, span=12 * HOUR, cluster=ClusterSpec(num_nodes=4)
        )
        for node_id in range(CLUSTER.num_nodes):
            assert [e for e in small if e.node_id == node_id] == [
                e for e in big if e.node_id == node_id
            ]

    def test_scale_schedule_events(self):
        dyn = ScaleSchedule(steps=((0.25, 2), (0.75, -1)))
        events = dyn.events(seed=0, span=1000.0, cluster=CLUSTER)
        assert events == (
            ClusterEvent(time=250.0, kind=SCALE_UP, count=2),
            ClusterEvent(time=750.0, kind=SCALE_DOWN, count=1),
        )
        with pytest.raises(ClusterDynamicsError):
            ScaleSchedule(steps=((1.5, 2),))
        with pytest.raises(ClusterDynamicsError):
            ScaleSchedule(steps=((0.5, 0),))

    def test_registry_and_builtins(self):
        assert isinstance(resolve_dynamics("none"), NoDynamics)
        assert isinstance(resolve_dynamics("flaky"), RandomFailures)
        assert isinstance(resolve_dynamics("scaleout-midday"), ScaleSchedule)
        with pytest.raises(ClusterDynamicsError):
            resolve_dynamics("thunderstorm")

    def test_serialization_roundtrip(self):
        for dyn in (
            NoDynamics(),
            RandomFailures(mtbf=3 * HOUR, mttr=600.0),
            ScaleSchedule(steps=((0.1, 1), (0.9, -1))),
            FixedDynamics(fixed_events=(
                ClusterEvent(time=5.0, kind=NODE_FAIL, node_id=1),
                ClusterEvent(time=50.0, kind=NODE_RECOVER, node_id=1),
            )),
        ):
            assert dynamics_from_dict(dynamics_to_dict(dyn)) == dyn

    def test_event_file_roundtrip(self, tmp_path):
        dyn = FixedDynamics(fixed_events=(
            ClusterEvent(time=9.0, kind=SCALE_UP, count=3),
            ClusterEvent(time=2.0, kind=NODE_FAIL, node_id=0),
        ))
        path = tmp_path / "events.json"
        save_cluster_events(dyn, path)
        loaded = load_cluster_events(path)
        assert loaded == dyn  # FixedDynamics sorts at construction
        assert loaded.fixed_events[0].kind == NODE_FAIL
        # The file: prefix resolves through the registry entry point.
        assert resolve_dynamics(f"file:{path}") == dyn
        with pytest.raises(ClusterDynamicsError):
            resolve_dynamics(f"file:{tmp_path}/missing.json")


# ----------------------------------------------------------------------
# Cluster state transitions
# ----------------------------------------------------------------------
class TestClusterTransitions:
    def _cluster_with_jobs(self) -> Cluster:
        cluster = Cluster(CLUSTER)
        cluster.apply("a", Placement({0: ResourceVector(gpus=4, cpus=16)}))
        cluster.apply("b", Placement({
            0: ResourceVector(gpus=2, cpus=8),
            1: ResourceVector(gpus=2, cpus=8),
        }))
        cluster.apply("c", Placement({1: ResourceVector(gpus=6, cpus=24)}))
        return cluster

    def test_remove_node_evicts_whole_placements(self):
        cluster = self._cluster_with_jobs()
        victims = cluster.remove_node(0)
        assert victims == ["a", "b"]  # b spans both nodes -> still a victim
        # The gang is gone everywhere, not just on the failed node.
        assert cluster.placement_of("a").is_empty
        assert cluster.placement_of("b").is_empty
        assert cluster.placement_of("c").total.gpus == 6
        assert not cluster.nodes[0].up

    def test_down_node_is_invisible_to_capacity_queries(self):
        cluster = self._cluster_with_jobs()
        cluster.remove_node(0)
        assert cluster.total.gpus == 8
        assert cluster.num_up_nodes == 1
        assert cluster.free.gpus == 2  # node 1 keeps c's 6
        assert cluster.nodes[0].free.is_zero
        assert cluster.gpu_utilization() == pytest.approx(6 / 8)
        with pytest.raises(PlacementError):
            cluster.apply("d", Placement({0: ResourceVector(gpus=1, cpus=1)}))

    def test_recover_restores_capacity(self):
        cluster = self._cluster_with_jobs()
        cluster.remove_node(0)
        cluster.add_node(0)
        assert cluster.total.gpus == CLUSTER.total_gpus
        assert cluster.free.gpus == CLUSTER.total_gpus - 6
        cluster.apply("d", Placement({0: ResourceVector(gpus=8, cpus=32)}))

    def test_scale_up_appends_fresh_nodes(self):
        cluster = Cluster(CLUSTER)
        new_id = cluster.add_node()
        assert new_id == 2
        assert cluster.total.gpus == 24
        cluster.apply("x", Placement({2: ResourceVector(gpus=8, cpus=32)}))
        assert cluster.placement_of("x").total.gpus == 8

    def test_transition_misuse_raises(self):
        cluster = Cluster(CLUSTER)
        with pytest.raises(ClusterDynamicsError):
            cluster.remove_node(7)  # no such node
        with pytest.raises(ClusterDynamicsError):
            cluster.add_node(0)  # already up
        cluster.remove_node(0)
        with pytest.raises(ClusterDynamicsError):
            cluster.remove_node(0)  # already down

    def test_all_up_totals_match_spec(self):
        """Live totals are exactly the spec-derived ones when nothing is
        down — the identity every static code path relies on."""
        cluster = Cluster(CLUSTER)
        assert cluster.total == ResourceVector(
            CLUSTER.total_gpus, CLUSTER.total_cpus, CLUSTER.total_host_mem
        )


# ----------------------------------------------------------------------
# Event calendar integration
# ----------------------------------------------------------------------
class TestCalendarClusterEvents:
    def test_cursor_drains_in_order(self):
        events = [
            ClusterEvent(time=t, kind=SCALE_UP) for t in (5.0, 20.0, 20.0, 90.0)
        ]
        cal = EventCalendar([], tick_interval=300.0, cluster_events=events)
        assert cal.has_cluster_events
        assert [e.time for e in cal.pop_cluster_events(20.5)] == [5.0, 20.0, 20.0]
        assert cal.next_event_time(20.5, []) == 90.0  # event beats the tick
        assert [e.time for e in cal.pop_cluster_events(1e9)] == [90.0]
        assert not cal.has_cluster_events
        assert cal.next_event_time(90.0, []) == 390.0  # back to ticks

    def test_clock_stops_exactly_at_event_time(self):
        events = [ClusterEvent(time=123.0, kind=NODE_FAIL, node_id=0)]
        cal = EventCalendar([], tick_interval=300.0, cluster_events=events)
        assert cal.next_event_time(0.0, []) == 123.0


# ----------------------------------------------------------------------
# Engine integration
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fitted():
    """(trace, fitted store) shared by the engine-level dynamics tests."""
    testbed = SyntheticTestbed(CLUSTER, seed=SEED)
    trace = generate_trace(
        WorkloadConfig(
            num_jobs=10, seed=SEED, span=1800.0, cluster=CLUSTER,
            model_weights={"llama-30b": 0.0},
        ),
        testbed,
    )
    store = PerfModelStore()
    for model in all_models():
        if model.name == "llama-30b":
            continue
        perf, _ = build_perf_model(
            testbed, model, model.global_batch_size, seed=SEED
        )
        store.add(perf)
    return trace, store


def _run(policy_name, trace, store, events, *, fast=True, **kwargs):
    sim = Simulator(
        CLUSTER,
        make_policy(policy_name),
        testbed=SyntheticTestbed(CLUSTER, seed=SEED),
        perf_store=store,
        seed=SEED,
        fast_path=fast,
        **kwargs,
    )
    return sim.run(trace, cluster_events=events)


#: One failure/recovery mid-trace: lands while several jobs are running.
FAIL_AT_1H = (
    ClusterEvent(time=3600.0, kind=NODE_FAIL, node_id=0),
    ClusterEvent(time=5400.0, kind=NODE_RECOVER, node_id=0),
)


class TestEngineDynamics:
    def test_no_events_is_the_static_simulation(self, fitted):
        trace, store = fitted
        static = _run("rubick", trace, store, None)
        empty = _run("rubick", trace, store, ())
        assert static.records == empty.records
        assert static.cluster_events == 0 and static.evictions == 0

    def test_failure_evicts_requeues_and_completes(self, fitted):
        trace, store = fitted
        result = _run("rubick", trace, store, FAIL_AT_1H)
        assert result.cluster_events == 2
        assert result.evictions > 0
        # Every job still completes (the node comes back).
        assert len(result.records) == len(trace)
        assert result.total_restarts == result.evictions
        evicted = [r for r in result.records if r.restart_count]
        assert evicted
        # Evicted jobs paid the restart penalty on top of the delta.
        assert all(r.reconfig_count >= 1 for r in evicted)

    def test_lost_plus_goodput_is_total(self, fitted):
        trace, store = fitted
        result = _run("rubick", trace, store, FAIL_AT_1H)
        assert result.lost_gpu_hours >= 0.0
        assert result.lost_gpu_hours + result.goodput_gpu_hours == (
            pytest.approx(result.total_gpu_hours, rel=1e-12)
        )

    def test_failure_round_never_short_circuits(self, fitted):
        """An eviction round must invoke the policy even if the previous
        round reached a steady-state fixed point."""
        trace, store = fitted
        static = _run("antman", trace, store, None)
        assert static.policy_skips > 0  # antman steady-states quickly
        dynamic = _run("antman", trace, store, FAIL_AT_1H)
        # The dynamics rounds (and the post-eviction reshuffling) ran the
        # policy: jobs were evicted and still all completed.
        assert dynamic.evictions > 0
        assert len(dynamic.records) == len(trace)

    def test_eviction_clears_placement_mid_run(self, fitted):
        """Inspect the live state right after the failure round."""
        trace, store = fitted
        sim = Simulator(
            CLUSTER, make_policy("rubick"),
            testbed=SyntheticTestbed(CLUSTER, seed=SEED),
            perf_store=store, seed=SEED,
        )
        cluster = Cluster(CLUSTER)
        calendar = EventCalendar([], 300.0)
        from repro.cluster.placement import Placement as P
        from repro.cluster.resources import ResourceVector as RV
        from repro.scheduler.job import Job, JobSpec
        from repro.models import GPT2
        from repro.plans import ExecutionPlan
        from repro.sim.metrics import SimulationResult

        spec = JobSpec(
            job_id="v", model=GPT2, global_batch=GPT2.global_batch_size,
            requested=RV(gpus=2, cpus=8),
            initial_plan=ExecutionPlan(dp=2, ga_steps=8),
            total_samples=1e5, submit_time=0.0,
        )
        job = Job(spec=spec, status=JobStatus.RUNNING)
        job.start_time = 0.0
        job.placement = P({0: RV(gpus=2, cpus=8)})
        job.plan = spec.initial_plan
        job.throughput = 10.0
        job.samples_done = 500.0  # progress since the (implicit) checkpoint
        cluster.apply("v", job.placement)
        result = SimulationResult(policy_name="p", trace_name="t")
        sim._apply_cluster_event(
            ClusterEvent(time=100.0, kind=NODE_FAIL, node_id=0),
            cluster, {"v": job}, 100.0, calendar, result,
        )
        assert job.status == JobStatus.QUEUED
        assert job.placement.is_empty and job.plan is None
        assert job.throughput == 0.0
        assert cluster.placement_of("v").is_empty
        assert job.restart_count == 1 and result.evictions == 1
        # Progress rolled back to the checkpoint; the held GPU-seconds that
        # produced it are charged as lost: 2 GPUs x (500 samples / 10/s).
        assert job.samples_done == 0.0
        assert job.lost_gpu_seconds == pytest.approx(2 * 50.0)
        assert job.pending_restart_penalty == sim.restart_penalty

    def test_restart_penalty_is_lost_not_reconfig_overhead(self, fitted):
        """The penalty tail of a restart pause must not inflate the
        reconfiguration metrics: a policy that merely suffered evictions
        would otherwise read as reconfiguring more aggressively."""
        trace, store = fitted
        no_penalty = _run(
            "rubick", trace, store, FAIL_AT_1H, restart_penalty=0.0
        )
        with_penalty = _run(
            "rubick", trace, store, FAIL_AT_1H, restart_penalty=600.0
        )
        assert no_penalty.evictions == with_penalty.evictions > 0
        # Reconfig *time* per pause is capped by count x delta in both runs
        # (the 600 s penalty tails land in lost, not reconfig_seconds).
        for r in with_penalty.records:
            assert r.reconfig_seconds <= r.reconfig_count * 78.0 + 1e-6
        # And the penalty run lost strictly more GPU-hours.
        assert with_penalty.lost_gpu_hours > no_penalty.lost_gpu_hours
        assert with_penalty.lost_gpu_hours + with_penalty.goodput_gpu_hours \
            == pytest.approx(with_penalty.total_gpu_hours, rel=1e-12)

    def test_scale_up_expands_and_scale_down_evicts(self, fitted):
        trace, store = fitted
        events = (
            ClusterEvent(time=1200.0, kind=SCALE_UP, count=1),
            ClusterEvent(time=3600.0, kind=SCALE_DOWN, count=1),
        )
        result = _run("rubick", trace, store, events)
        assert result.cluster_events == 2
        assert len(result.records) == len(trace)

    def test_recovery_disarms_the_deadlock_guard(self, fitted):
        """All nodes down with jobs queued must wait for the recovery, not
        raise the cannot-place SimulationError."""
        trace, store = fitted
        events = (
            ClusterEvent(time=600.0, kind=NODE_FAIL, node_id=0),
            ClusterEvent(time=601.0, kind=NODE_FAIL, node_id=1),
            ClusterEvent(time=3 * 3600.0, kind=NODE_RECOVER, node_id=0),
            ClusterEvent(time=3 * 3600.0, kind=NODE_RECOVER, node_id=1),
        )
        result = _run("rubick", trace, store, events)
        assert len(result.records) == len(trace)
        assert result.evictions > 0

    @pytest.mark.parametrize("policy_name", sorted(POLICIES))
    def test_fast_path_byte_identical_under_dynamics(self, fitted, policy_name):
        """The PR-3 cache-audit golden: a post-failure round on the fast
        path (diff-apply, steady-state skip, completion-hint heap, memos)
        reproduces the reference loop byte for byte."""
        trace, store = fitted
        fast = _run(policy_name, trace, store, FAIL_AT_1H, fast=True)
        reference = _run(policy_name, trace, store, FAIL_AT_1H, fast=False)
        assert fast.records == reference.records  # exact float equality
        assert fast.makespan == reference.makespan
        assert fast.evictions == reference.evictions
        assert fast.cluster_events == reference.cluster_events
        assert reference.policy_skips == 0


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
class TestDynamicsSerialization:
    def test_dynamic_result_roundtrip(self, fitted):
        trace, store = fitted
        result = _run("rubick", trace, store, FAIL_AT_1H)
        doc = result_to_dict(result)
        assert doc["cluster_events"] == result.cluster_events
        assert doc["evictions"] == result.evictions
        assert "goodput_gpu_h" in doc["summary"]
        loaded = result_from_dict(doc)
        assert loaded.records == result.records
        assert loaded.evictions == result.evictions
        assert loaded.cluster_events == result.cluster_events
        assert loaded.lost_gpu_hours == result.lost_gpu_hours

    def test_nan_sla_serializes_as_null_json(self, fitted):
        """Documents must stay RFC-8259 valid: NaN travels as null."""
        import json
        import math

        trace, store = fitted
        result = _run("rubick", trace, store, FAIL_AT_1H)
        record = result.records[0]
        object.__setattr__(record, "sla_ratio", float("nan"))
        doc = result_to_dict(result)
        json.dumps(doc, allow_nan=False)  # raises on any NaN token
        loaded = result_from_dict(json.loads(json.dumps(doc)))
        assert math.isnan(loaded.records[0].sla_ratio)
        assert loaded.records[1:] == result.records[1:]

    def test_static_documents_carry_no_dynamics_keys(self, fitted):
        trace, store = fitted
        doc = result_to_dict(_run("rubick", trace, store, None))
        assert "cluster_events" not in doc and "evictions" not in doc
        assert "goodput_gpu_h" not in doc["summary"]
        for record in doc["records"]:
            assert "restart_count" not in record
            assert "lost_gpu_seconds" not in record
        # Legacy loads default the fields.
        loaded = result_from_dict(doc)
        assert loaded.cluster_events == 0 and loaded.evictions == 0
