"""Placement construction and aggregate queries."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster import PAPER_CLUSTER, Placement, ResourceVector
from repro.errors import PlacementError


class TestConstruction:
    def test_empty(self):
        p = Placement.empty()
        assert p.is_empty
        assert p.num_nodes == 0
        assert p.min_gpus_per_node == 0

    def test_zero_shares_dropped(self):
        p = Placement({0: ResourceVector.zero(), 1: ResourceVector(gpus=2, cpus=2)})
        assert p.node_ids() == [1]

    def test_negative_share_rejected(self):
        with pytest.raises(ValueError):
            Placement({0: ResourceVector(gpus=-1)})

    def test_single(self):
        p = Placement.single(3, ResourceVector(gpus=4, cpus=8))
        assert p.node_ids() == [3]
        assert p.total == ResourceVector(4, 8, 0.0)


class TestAggregates:
    def test_total_sums_shares(self):
        p = Placement(
            {
                0: ResourceVector(2, 4, 1.0),
                1: ResourceVector(3, 6, 2.0),
            }
        )
        assert p.total == ResourceVector(5, 10, 3.0)

    def test_gpus_per_node_descending(self):
        p = Placement({0: ResourceVector(gpus=2), 1: ResourceVector(gpus=8)})
        assert p.gpus_per_node == [8, 2]
        assert p.min_gpus_per_node == 2
        assert not p.is_single_node

    def test_cpu_only_share_not_a_gpu_node(self):
        p = Placement({0: ResourceVector(gpus=4), 1: ResourceVector(cpus=8)})
        assert p.num_nodes == 1
        assert p.min_gpus_per_node == 4


class TestPacked:
    def test_fills_whole_nodes_first(self):
        p = Placement.packed(PAPER_CLUSTER, 12, cpus_per_gpu=2)
        assert p.gpus_per_node == [8, 4]
        assert p.total.gpus == 12
        assert p.total.cpus == 24

    def test_single_node(self):
        p = Placement.packed(PAPER_CLUSTER, 8)
        assert p.is_single_node

    def test_zero_gpus_is_empty(self):
        assert Placement.packed(PAPER_CLUSTER, 0).is_empty

    def test_exceeding_cluster_raises(self):
        with pytest.raises(PlacementError):
            Placement.packed(PAPER_CLUSTER, PAPER_CLUSTER.total_gpus + 1)

    def test_negative_raises(self):
        with pytest.raises(PlacementError):
            Placement.packed(PAPER_CLUSTER, -1)

    @given(gpus=st.integers(min_value=1, max_value=64))
    def test_packed_totals_match(self, gpus):
        p = Placement.packed(PAPER_CLUSTER, gpus)
        assert p.total.gpus == gpus
        assert all(g <= PAPER_CLUSTER.node.num_gpus for g in p.gpus_per_node)
        # At most one partially filled node under dense packing.
        partial = [g for g in p.gpus_per_node if g < PAPER_CLUSTER.node.num_gpus]
        assert len(partial) <= 1


class TestWithShare:
    def test_replace_and_remove(self):
        p = Placement({0: ResourceVector(gpus=2)})
        p2 = p.with_share(1, ResourceVector(gpus=3))
        assert p2.total.gpus == 5
        p3 = p2.with_share(0, ResourceVector.zero())
        assert p3.node_ids() == [1]

    def test_original_unchanged(self):
        p = Placement({0: ResourceVector(gpus=2)})
        p.with_share(0, ResourceVector(gpus=5))
        assert p.total.gpus == 2
