"""Scale-mode simulator loop: equivalence, invariants, streaming metrics.

``Simulator(scale_mode=True)`` trades the default loop's exact semantics
for per-round costs independent of the active-job count (lazy progress
materialization, heap-driven completions, Gavel-style scheduling rounds).
Per the large-scale testing policy in DESIGN.md it is NOT byte-identical
to the default loop — jobs can queue up to one round longer — so this
suite asserts:

* **uncontended equivalence** — on the light 30-job smoke both loops
  produce the same completions and (empirically ulp-level) makespan, with
  JCTs bounded by the round length;
* **conservation invariants under contention + dynamics** — every job
  completes, evictions equal restart counts, goodput + lost == total
  GPU-hours, and per-record timings are self-consistent;
* **streaming metrics** — a bounded ``result_record_limit`` run matches
  the unbounded run's aggregates exactly while per-record slices and
  serialization refuse to answer from a partial sample;
* **placement lockstep** — ``job.placement`` equals the cluster's view at
  every policy round (the contract the baseline policies' fast paths
  substitute on).
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterSpec, NodeSpec, PAPER_CLUSTER
from repro.cluster.dynamics import resolve_dynamics
from repro.errors import SimulationError
from repro.models import all_models
from repro.oracle import SyntheticTestbed, build_perf_model
from repro.scheduler import PerfModelStore
from repro.scheduler.interfaces import Tenant
from repro.scheduler.job import JobStatus
from repro.scheduler.registry import make_policy
from repro.sim import Simulator, WorkloadConfig, generate_trace
from repro.sim.serialization import result_to_dict
from repro.units import HOUR, MINUTE

SEED = 7
TICK = 300.0
CLUSTER = ClusterSpec(num_nodes=16, node=NodeSpec(num_gpus=8, num_cpus=96))


@pytest.fixture(scope="module")
def testbed() -> SyntheticTestbed:
    return SyntheticTestbed(CLUSTER, seed=SEED)


@pytest.fixture(scope="module")
def store(testbed) -> PerfModelStore:
    store = PerfModelStore()
    for model in all_models():
        perf, _ = build_perf_model(
            testbed, model, model.global_batch_size, seed=SEED
        )
        store.add(perf)
    return store


def _sim(policy: str, testbed, store, *, cluster=None, scale=True, **kw):
    cluster = cluster or CLUSTER
    return Simulator(
        cluster,
        make_policy(policy),
        testbed=testbed,
        perf_store=store,
        seed=SEED,
        fast_path=True,
        scale_mode=scale,
        **kw,
    )


@pytest.fixture(scope="module")
def contended(testbed, store):
    """One contended flaky run, shared by the invariant tests.

    Arrival bursts against 128 GPUs keep a standing queue, and the flaky
    profile injects failures/recoveries, so the run exercises queued
    batches, evictions, checkpoint rollback, and round-based placement.
    """
    cfg = WorkloadConfig(
        num_jobs=400,
        span=2 * HOUR,
        seed=SEED,
        cluster=CLUSTER,
        duration_median=10 * MINUTE,
        name="scale-contended",
    )
    trace = generate_trace(cfg, testbed)
    events = resolve_dynamics("flaky").events(
        seed=SEED, span=24 * HOUR, cluster=CLUSTER
    )
    result = _sim("antman", testbed, store).run(trace, cluster_events=events)
    return trace, events, result


# ----------------------------------------------------------------------
# Uncontended equivalence against the default loop
# ----------------------------------------------------------------------
class TestUncontendedEquivalence:
    def test_smoke_trace_matches_default_loop(self, fitted_store):
        paper_testbed = SyntheticTestbed(PAPER_CLUSTER, seed=SEED)
        trace = generate_trace(
            WorkloadConfig(num_jobs=30, seed=SEED, name="smoke"), paper_testbed
        )
        results = {}
        for scale in (False, True):
            sim = Simulator(
                PAPER_CLUSTER,
                make_policy("synergy"),
                testbed=SyntheticTestbed(PAPER_CLUSTER, seed=SEED),
                perf_store=fitted_store,
                seed=SEED,
                fast_path=True,
                scale_mode=scale,
            )
            results[scale] = sim.run(trace)
        ref, scaled = results[False], results[True]
        assert len(ref.records) == len(scaled.records) == 30
        assert {r.job_id for r in ref.records} == {
            r.job_id for r in scaled.records
        }
        # The last completion is insensitive to round batching on this
        # trace; the arithmetic paths differ, so equality is ulp-level,
        # not bitwise.
        assert scaled.makespan == pytest.approx(ref.makespan, rel=1e-9)
        # Round batching can delay any placement by up to one round and
        # those delays cascade; it must not change JCT by more than a few
        # round lengths on an uncontended trace.
        assert abs(scaled.avg_jct() - ref.avg_jct()) <= 3 * TICK
        # Round batching strictly reduces policy work.
        assert scaled.policy_invocations < ref.policy_invocations

    def test_unplaceable_job_raises(self, testbed, store):
        # A zero GPU quota makes every guaranteed job permanently
        # unplaceable; the scale loop must fail fast (its deadlock guard
        # mirrors the default loop's idle-round counter) instead of
        # spinning to max_sim_time.
        cfg = WorkloadConfig(
            num_jobs=3, span=HOUR, seed=SEED, cluster=CLUSTER, name="tiny"
        )
        trace = generate_trace(cfg, testbed)
        sim = _sim("antman", testbed, store)
        with pytest.raises(SimulationError):
            sim.run(trace, tenants={"default": Tenant("default", gpu_quota=0)})


# ----------------------------------------------------------------------
# Conservation invariants under contention + cluster dynamics
# ----------------------------------------------------------------------
class TestContendedInvariants:
    def test_all_jobs_complete(self, contended):
        trace, _, result = contended
        assert len(result.records) == len(trace.jobs) == 400
        assert result.dropped_records == 0

    def test_dynamics_fired(self, contended):
        _, _, result = contended
        assert result.cluster_events > 0
        assert result.evictions > 0

    def test_evictions_match_restart_counts(self, contended):
        _, _, result = contended
        assert result.total_restarts == result.evictions

    def test_gpu_hours_conserve(self, contended):
        _, _, result = contended
        assert result.lost_gpu_hours > 0
        assert result.goodput_gpu_hours > 0
        assert result.goodput_gpu_hours + result.lost_gpu_hours == (
            pytest.approx(result.total_gpu_hours, rel=1e-12)
        )

    def test_records_self_consistent(self, contended):
        _, _, result = contended
        for r in result.records:
            assert r.finish_time >= r.submit_time
            assert r.jct == pytest.approx(r.finish_time - r.submit_time)
            assert r.queue_seconds >= 0.0
            assert r.run_seconds >= 0.0
            # JCT decomposes into queueing, execution, and pauses; the
            # components can never exceed the whole.
            assert r.jct + 1e-6 >= r.run_seconds + r.reconfig_seconds
            assert r.restart_count >= 0
            assert r.lost_gpu_seconds >= 0.0

    def test_makespan_spans_records(self, contended):
        _, _, result = contended
        lo, hi = result.span_bounds()
        assert result.makespan == hi - lo
        assert result.makespan > 0


# ----------------------------------------------------------------------
# Streaming metrics (bounded record retention)
# ----------------------------------------------------------------------
class TestStreamingMetrics:
    @pytest.fixture(scope="class")
    def pair(self, contended, testbed, store):
        trace, events, unbounded = contended
        bounded = _sim(
            "antman", testbed, store, result_record_limit=50
        ).run(trace, cluster_events=events)
        return unbounded, bounded

    def test_aggregates_exactly_equal(self, pair):
        unbounded, bounded = pair
        assert bounded.summary() == unbounded.summary()
        assert bounded.makespan == unbounded.makespan
        assert bounded.total_gpu_hours == unbounded.total_gpu_hours
        assert bounded.lost_gpu_hours == unbounded.lost_gpu_hours
        assert bounded.total_restarts == unbounded.total_restarts

    def test_retention_bound_honored(self, pair):
        unbounded, bounded = pair
        assert len(bounded.records) == 50
        assert bounded.dropped_records == len(unbounded.records) - 50
        # The retained sample is the completion-order prefix.
        kept = [r.job_id for r in bounded.records]
        assert kept == [r.job_id for r in unbounded.records[:50]]

    def test_per_record_slices_refuse(self, pair):
        _, bounded = pair
        with pytest.raises(ValueError):
            bounded.by_tenant("default")

    def test_serialization_refuses(self, pair):
        _, bounded = pair
        with pytest.raises(ValueError):
            result_to_dict(bounded)


# ----------------------------------------------------------------------
# Placement lockstep + non-FIFO policy smoke
# ----------------------------------------------------------------------
class _LockstepProbe:
    """Asserts job.placement mirrors the cluster at every policy round."""

    def __init__(self, inner):
        self.inner = inner
        self.name = inner.name
        self.reactive = getattr(inner, "reactive", False)
        self.engine = getattr(inner, "engine", None)
        self.checked = 0

    def schedule(self, jobs, cluster, ctx):
        for job in jobs:
            if job.is_running:
                mirrored = cluster.placement_of(job.job_id)
                assert job.placement.shares == mirrored.shares
                self.checked += 1
            elif job.status is JobStatus.QUEUED:
                assert not cluster.placement_of(job.job_id).shares
        return self.inner.schedule(jobs, cluster, ctx)


class TestLockstepAndPolicies:
    def test_job_placement_lockstep_under_dynamics(self, testbed, store):
        cfg = WorkloadConfig(
            num_jobs=120,
            span=2 * HOUR,
            seed=SEED,
            cluster=CLUSTER,
            duration_median=10 * MINUTE,
            name="lockstep",
        )
        trace = generate_trace(cfg, testbed)
        events = resolve_dynamics("flaky").events(
            seed=SEED, span=24 * HOUR, cluster=CLUSTER
        )
        probe = _LockstepProbe(make_policy("antman"))
        sim = Simulator(
            CLUSTER,
            probe,
            testbed=testbed,
            perf_store=store,
            seed=SEED,
            fast_path=True,
            scale_mode=True,
        )
        result = sim.run(trace, cluster_events=events)
        assert probe.checked > 0
        assert len(result.records) == 120

    def test_rubick_scale_smoke(self, testbed, store):
        cfg = WorkloadConfig(
            num_jobs=40,
            span=2 * HOUR,
            seed=SEED,
            cluster=CLUSTER,
            name="rubick-scale",
        )
        trace = generate_trace(cfg, testbed)
        result = _sim("rubick", testbed, store).run(trace)
        assert len(result.records) == 40
        assert result.policy_invocations >= 1
        assert result.sim_rounds > 0
        assert result.makespan > 0
