"""Performance model: components, predictions, fitting."""

from __future__ import annotations

import pytest

from repro.cluster import PAPER_CLUSTER
from repro.errors import FittingError
from repro.models import GPT2, LLAMA2_7B
from repro.perfmodel import (
    Interconnect,
    PerfModel,
    PerfParams,
    ResourceShape,
    ThroughputSample,
    comm_volume_dp,
    comm_volume_pp,
    comm_volume_tp,
    fit_perf_model,
)
from repro.plans import ExecutionPlan, ZeroStage

ENV = Interconnect.from_cluster(PAPER_CLUSTER)


@pytest.fixture
def perf() -> PerfModel:
    return PerfModel(model=GPT2, env=ENV, t_fwd_ref=0.02, params=PerfParams())


class TestCommVolumes:
    def test_dp_zero_when_single_replica(self):
        assert comm_volume_dp(GPT2, ExecutionPlan(dp=1)) == 0.0

    def test_dp_volume_partitioned_by_shards(self):
        flat = comm_volume_dp(LLAMA2_7B, ExecutionPlan(dp=4, ga_steps=8))
        sharded = comm_volume_dp(
            LLAMA2_7B, ExecutionPlan(dp=4, tp=2, pp=2, micro_batches=2)
        )
        assert sharded == pytest.approx(flat / 4)

    def test_zero_dp_doubles_dp_volume(self):
        plain = comm_volume_dp(GPT2, ExecutionPlan(dp=4))
        zero = comm_volume_dp(GPT2, ExecutionPlan(dp=4, zero=ZeroStage.ZERO_DP))
        assert zero == pytest.approx(2 * plain)

    def test_tp_pp_zero_without_partitioning(self):
        assert comm_volume_tp(GPT2, ExecutionPlan(dp=4), 16) == 0.0
        assert comm_volume_pp(GPT2, ExecutionPlan(dp=4), 16) == 0.0

    def test_tp_volume_grows_with_degree(self):
        t2 = comm_volume_tp(LLAMA2_7B, ExecutionPlan(tp=2), 32)
        t4 = comm_volume_tp(LLAMA2_7B, ExecutionPlan(tp=4), 32)
        assert t4 > t2 > 0


class TestPredictions:
    def test_throughput_positive_and_inverse_of_iter_time(self, perf):
        plan = ExecutionPlan(dp=8, ga_steps=2)
        shape = ResourceShape.packed(8, cpus=32)
        thr = perf.throughput(plan, shape, 16)
        assert thr > 0
        assert thr == pytest.approx(16 / perf.iter_time(plan, shape, 16))

    def test_more_gpus_faster_for_dp(self, perf):
        t4 = perf.iter_time(ExecutionPlan(dp=4, ga_steps=4), ResourceShape.packed(4, cpus=16), 16)
        t8 = perf.iter_time(ExecutionPlan(dp=8, ga_steps=2), ResourceShape.packed(8, cpus=32), 16)
        assert t8 < t4

    def test_gc_slower_than_plain(self, perf):
        shape = ResourceShape.packed(8, cpus=32)
        plain = perf.iter_time(ExecutionPlan(dp=8, ga_steps=2), shape, 16)
        gc = perf.iter_time(ExecutionPlan(dp=8, ga_steps=2, gc=True), shape, 16)
        assert gc > plain

    def test_offload_cpu_scaling(self, perf):
        plan = ExecutionPlan(dp=4, zero=ZeroStage.OFFLOAD, ga_steps=4)
        few = perf.iter_time(plan, ResourceShape.packed(4, cpus=4), 16)
        many = perf.iter_time(plan, ResourceShape.packed(4, cpus=32), 16)
        assert many < few

    def test_multi_node_dp_slower_than_single_node(self, perf):
        plan = ExecutionPlan(dp=8, ga_steps=2)
        single = ResourceShape(gpus=8, num_nodes=1, min_gpus_per_node=8, cpus=32)
        spread = ResourceShape(gpus=8, num_nodes=8, min_gpus_per_node=1, cpus=32)
        assert perf.iter_time(plan, spread, 16) > perf.iter_time(plan, single, 16)

    def test_breakdown_components_sum_consistently(self, perf):
        plan = ExecutionPlan(dp=8, ga_steps=2)
        bd = perf.breakdown(plan, ResourceShape.packed(8, cpus=32), 16)
        assert bd.t_iter == pytest.approx(
            bd.t_cc + bd.t_oo + perf.params.k_const
        )

    def test_invalid_fwd_ref_rejected(self):
        with pytest.raises(ValueError):
            PerfModel(model=GPT2, env=ENV, t_fwd_ref=0.0)


class TestFitting:
    def _samples(self, truth: PerfModel, configs) -> list[ThroughputSample]:
        return [
            ThroughputSample(
                plan=plan,
                shape=shape,
                global_batch=16,
                throughput=truth.throughput(plan, shape, 16),
            )
            for plan, shape in configs
        ]

    def test_recovers_noiseless_truth(self):
        truth = PerfModel(
            model=GPT2, env=ENV, t_fwd_ref=0.02,
            params=PerfParams(k_bwd=2.1, k_opt=6e-11, k_const=0.04,
                              k_opt_off=6e-9),
        )
        configs = [
            (ExecutionPlan(dp=1, ga_steps=16), ResourceShape.packed(1, cpus=4)),
            (ExecutionPlan(dp=2, ga_steps=8), ResourceShape.packed(2, cpus=8)),
            (ExecutionPlan(dp=4, ga_steps=4), ResourceShape.packed(4, cpus=16)),
            (ExecutionPlan(dp=8, ga_steps=2), ResourceShape.packed(8, cpus=32)),
            (ExecutionPlan(dp=8, ga_steps=2, gc=True), ResourceShape.packed(8, cpus=32)),
            (ExecutionPlan(dp=1, zero=ZeroStage.OFFLOAD, ga_steps=16),
             ResourceShape.packed(1, cpus=4)),
            (ExecutionPlan(dp=1, zero=ZeroStage.OFFLOAD, ga_steps=16),
             ResourceShape.packed(1, cpus=16)),
            (ExecutionPlan(dp=2, zero=ZeroStage.OFFLOAD, ga_steps=8, gc=True),
             ResourceShape.packed(2, cpus=8)),
        ]
        samples = self._samples(truth, configs)
        fitted, report = fit_perf_model(GPT2, ENV, 0.02, samples, seed=3)
        assert report.rmsle < 0.02
        # Held-out prediction close to truth.
        plan = ExecutionPlan(dp=4, zero=ZeroStage.ZERO_DP, ga_steps=4)
        shape = ResourceShape.packed(4, cpus=16)
        assert fitted.throughput(plan, shape, 16) == pytest.approx(
            truth.throughput(plan, shape, 16), rel=0.1
        )

    def test_strict_mode_requires_seven_samples(self):
        truth = PerfModel(model=GPT2, env=ENV, t_fwd_ref=0.02)
        samples = self._samples(
            truth, [(ExecutionPlan(dp=8, ga_steps=2), ResourceShape.packed(8, cpus=32))]
        )
        with pytest.raises(FittingError, match=">= 7 samples"):
            fit_perf_model(GPT2, ENV, 0.02, samples)

    def test_strict_mode_requires_offload_samples(self):
        truth = PerfModel(model=GPT2, env=ENV, t_fwd_ref=0.02)
        configs = [
            (ExecutionPlan(dp=d, ga_steps=16 // d), ResourceShape.packed(d, cpus=4 * d))
            for d in (1, 2, 4, 8)
        ] * 2
        samples = self._samples(truth, configs)
        with pytest.raises(FittingError, match="ZeRO-Offload"):
            fit_perf_model(GPT2, ENV, 0.02, samples)

    def test_non_strict_allows_partial_sets(self):
        truth = PerfModel(model=GPT2, env=ENV, t_fwd_ref=0.02)
        samples = self._samples(
            truth,
            [(ExecutionPlan(dp=8, ga_steps=2), ResourceShape.packed(8, cpus=32))] * 3,
        )
        fitted, _ = fit_perf_model(GPT2, ENV, 0.02, samples, strict=False)
        assert fitted.params.k_bwd > 0

    def test_rejects_non_positive_throughput(self):
        bad = [
            ThroughputSample(
                plan=ExecutionPlan(dp=1, ga_steps=16),
                shape=ResourceShape.packed(1, cpus=4),
                global_batch=16,
                throughput=0.0,
            )
        ]
        with pytest.raises(FittingError):
            fit_perf_model(GPT2, ENV, 0.02, bad, strict=False)
