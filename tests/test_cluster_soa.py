"""SoA mirror lockstep: randomized ops vs brute-force object-graph truth.

The array-backed :class:`ClusterIndex` must agree with the object graph
after *any* mutation sequence — allocate/release/apply, node failure and
recovery, capacity scale-up — including the error paths that roll back.
Integer columns must agree exactly; the float host-memory column to ulps.
"""

from __future__ import annotations

import random

import pytest

from repro.cluster import (
    Cluster,
    ClusterSpec,
    NodeSpec,
    Placement,
    ResourceVector,
    resolve_dynamics,
)
from repro.cluster.soa import FreeGpuIndex
from repro.errors import ClusterDynamicsError, PlacementError
from repro.units import HOUR

SPEC = ClusterSpec(num_nodes=6, node=NodeSpec(num_gpus=8, num_cpus=96))


# ----------------------------------------------------------------------
# Brute-force recomputation (the pre-mirror O(n) scans, verbatim)
# ----------------------------------------------------------------------
def brute_free(cluster: Cluster) -> ResourceVector:
    gpus = cpus = 0
    host_mem = 0.0
    for node in cluster.nodes:
        node_free = node.free
        gpus += node_free.gpus
        cpus += node_free.cpus
        host_mem += node_free.host_mem
    return ResourceVector(gpus, cpus, host_mem)


def brute_all_job_ids(cluster: Cluster) -> set[str]:
    ids: set[str] = set()
    for node in cluster.nodes:
        ids.update(node.allocations)
    return ids


def brute_gpu_utilization(cluster: Cluster) -> float:
    total = sum(node.capacity.gpus for node in cluster.nodes)
    used = total - sum(node.free.gpus for node in cluster.nodes)
    return used / total if total else 0.0


def brute_placement_of(cluster: Cluster, job_id: str) -> Placement:
    return Placement(
        {
            node.node_id: node.allocations[job_id]
            for node in cluster.nodes
            if job_id in node.allocations
        }
    )


def brute_buckets(cluster: Cluster) -> dict[int, list[int]]:
    out: dict[int, list[int]] = {}
    for node in cluster.nodes:
        out.setdefault(node.free.gpus, []).append(node.node_id)
    return {k: sorted(v) for k, v in out.items() if v}


def assert_lockstep(cluster: Cluster) -> None:
    """The full SoA↔object equality probe."""
    index = cluster.index
    # Integer aggregates: exact.
    free = brute_free(cluster)
    assert cluster.free.gpus == free.gpus
    assert cluster.free.cpus == free.cpus
    # host_mem is the float column: exact up to ulp drift (values are in
    # bytes, so an absolute slack of 1e-3 bytes is far below one byte).
    assert cluster.free.host_mem == pytest.approx(
        free.host_mem, rel=1e-9, abs=1e-3
    )
    assert cluster.num_up_nodes == sum(1 for n in cluster.nodes if n.up)
    assert cluster.all_job_ids() == brute_all_job_ids(cluster)
    assert cluster.gpu_utilization() == brute_gpu_utilization(cluster)
    # Per-node columns.
    for node in cluster.nodes:
        probe = index.probe(node.node_id)
        used = node.used
        assert probe.used_gpus == used.gpus
        assert probe.used_cpus == used.cpus
        assert probe.used_mem == pytest.approx(
            used.host_mem, rel=1e-9, abs=1e-3
        )
        assert probe.up == node.up
        assert probe.num_allocs == len(node.allocations)
        assert probe.cap_gpus == node.capacity.gpus
    # Reverse index: job -> {node: share} matches dict membership.
    for job_id in brute_all_job_ids(cluster):
        expected = brute_placement_of(cluster, job_id)
        assert cluster.placement_of(job_id).shares == expected.shares
    for job_id, on_nodes in index.jobs.items():
        for node_id, share in on_nodes.items():
            assert cluster.nodes[node_id].allocations[job_id] == share
    # Free-GPU bucket index matches a brute-force rebuild.
    assert index.free_gpus.snapshot() == brute_buckets(cluster)


# ----------------------------------------------------------------------
# FreeGpuIndex unit behaviour
# ----------------------------------------------------------------------
class TestFreeGpuIndex:
    def test_iteration_matches_stable_sort(self):
        rng = random.Random(11)
        frees = [rng.randint(0, 8) for _ in range(32)]
        idx = FreeGpuIndex(8)
        for node_id, f in enumerate(frees):
            idx.add(node_id, f)
        expected = [
            nid
            for nid, _ in sorted(
                enumerate(frees), key=lambda item: item[1], reverse=True
            )
        ]
        assert list(idx.iter_ids_by_free_desc()) == expected
        # ...and stays identical through random updates.
        for _ in range(200):
            nid = rng.randrange(32)
            frees[nid] = rng.randint(0, 8)
            idx.update(nid, frees[nid])
        expected = [
            nid
            for nid, _ in sorted(
                enumerate(frees), key=lambda item: item[1], reverse=True
            )
        ]
        assert list(idx.iter_ids_by_free_desc()) == expected

    def test_first_fit_and_largest(self):
        idx = FreeGpuIndex(8)
        for node_id, f in enumerate([2, 5, 8, 5, 0]):
            idx.add(node_id, f)
        assert idx.largest_free() == 8
        assert idx.first_fit(8) == 2
        assert idx.first_fit(5) == 1
        assert idx.first_fit(1) == 0
        idx.update(2, 0)
        assert idx.largest_free() == 5
        assert idx.first_fit(6) is None
        assert list(idx.iter_nonempty_desc()) == [1, 3, 0]

    def test_saturated(self):
        idx = FreeGpuIndex(8)
        idx.add(0, 0)
        assert idx.largest_free() == 0
        assert idx.first_fit(1) is None
        assert list(idx.iter_nonempty_desc()) == []


# ----------------------------------------------------------------------
# Satellite regression: O(1) accessors pinned to brute force
# ----------------------------------------------------------------------
class TestAccessorRegression:
    def test_gpu_utilization_and_all_job_ids(self):
        cluster = Cluster(SPEC)
        cluster.apply("a", Placement({0: ResourceVector(gpus=8, cpus=32)}))
        cluster.apply(
            "b",
            Placement(
                {1: ResourceVector(gpus=4), 2: ResourceVector(gpus=4)}
            ),
        )
        assert cluster.gpu_utilization() == brute_gpu_utilization(cluster)
        assert cluster.all_job_ids() == brute_all_job_ids(cluster)
        cluster.remove_node(1)
        assert cluster.gpu_utilization() == brute_gpu_utilization(cluster)
        assert cluster.all_job_ids() == brute_all_job_ids(cluster)
        cluster.release("a")
        assert cluster.gpu_utilization() == brute_gpu_utilization(cluster)
        assert cluster.all_job_ids() == brute_all_job_ids(cluster)

    def test_all_down_is_zero(self):
        cluster = Cluster(ClusterSpec(num_nodes=1, node=SPEC.node))
        cluster.remove_node(0)
        assert cluster.gpu_utilization() == 0.0


# ----------------------------------------------------------------------
# Randomized operation sequences (the property test)
# ----------------------------------------------------------------------
def _random_placement(rng: random.Random, cluster: Cluster) -> Placement:
    up = [n for n in cluster.nodes if n.up]
    if not up:
        return Placement({})
    shares = {}
    for node in rng.sample(up, k=rng.randint(1, min(3, len(up)))):
        gpus = rng.randint(0, node.spec.num_gpus)
        shares[node.node_id] = ResourceVector(
            gpus=gpus,
            cpus=rng.randint(0, node.spec.num_cpus // 2),
            host_mem=rng.random() * node.spec.host_mem / 4,
        )
    return Placement(shares)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_randomized_ops_stay_lockstep(seed):
    rng = random.Random(seed)
    cluster = Cluster(SPEC)
    jobs = [f"job-{i}" for i in range(12)]
    for step in range(300):
        op = rng.random()
        try:
            if op < 0.45:
                cluster.apply(rng.choice(jobs), _random_placement(rng, cluster))
            elif op < 0.60:
                cluster.release(rng.choice(jobs))
            elif op < 0.70:
                node = rng.choice(cluster.nodes)
                node.allocate(
                    rng.choice(jobs),
                    ResourceVector(gpus=rng.randint(0, 4), cpus=rng.randint(0, 8)),
                )
            elif op < 0.78:
                node = rng.choice(cluster.nodes)
                node.set_allocation(
                    rng.choice(jobs),
                    ResourceVector(gpus=rng.randint(0, 12)),
                )
            elif op < 0.84:
                cluster.nodes[rng.randrange(len(cluster.nodes))].release(
                    rng.choice(jobs)
                )
            elif op < 0.92:
                cluster.remove_node(rng.randrange(len(cluster.nodes)))
            elif op < 0.97:
                down = [n.node_id for n in cluster.nodes if not n.up]
                cluster.add_node(rng.choice(down) if down else None)
            else:
                cluster.add_node()  # capacity scale-up
        except (PlacementError, ClusterDynamicsError):
            pass  # rejected ops must leave the mirror untouched too
        if step % 25 == 0:
            assert_lockstep(cluster)
    assert_lockstep(cluster)


def test_lockstep_under_flaky_dynamics():
    """PR 5 dynamics events keep the mirror exact (satellite requirement)."""
    spec = ClusterSpec(num_nodes=8, node=NodeSpec(num_gpus=8, num_cpus=96))
    cluster = Cluster(spec)
    rng = random.Random(42)
    jobs = [f"j{i}" for i in range(10)]
    events = resolve_dynamics("flaky-heavy").events(
        seed=7, span=12 * HOUR, cluster=spec
    )
    assert events, "expected failure/recovery events from the flaky profile"
    for event in events:
        # Fill in some load between events so failures actually evict.
        for _ in range(3):
            try:
                cluster.apply(rng.choice(jobs), _random_placement(rng, cluster))
            except PlacementError:
                pass
        try:
            if event.kind in ("fail", "scale-down"):
                cluster.remove_node(
                    event.node_id
                    if event.node_id is not None
                    else max(n.node_id for n in cluster.nodes if n.up)
                )
            else:
                cluster.add_node(event.node_id)
        except ClusterDynamicsError:
            pass
        assert_lockstep(cluster)
