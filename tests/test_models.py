"""Model catalog and spec invariants."""

from __future__ import annotations

import pytest

from repro.errors import InfeasiblePlanError
from repro.models import (
    CATALOG,
    GPT2,
    LLAMA2_7B,
    LLAMA_30B,
    ModelSpec,
    ModelWorkload,
    VIT,
    all_models,
    get_model,
    is_large_model,
    is_small_model,
)


class TestCatalog:
    def test_has_seven_models(self):
        assert len(CATALOG) == 7

    def test_get_model_roundtrip(self):
        for spec in all_models():
            assert get_model(spec.name) is spec

    def test_unknown_model_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="gpt2-1.5b"):
            get_model("nope")

    def test_paper_table2_scales(self):
        # Param counts match Table 2's reported sizes.
        assert CATALOG["vit"].param_count == pytest.approx(86e6)
        assert CATALOG["gpt2-1.5b"].param_count == pytest.approx(1.5e9)
        assert CATALOG["llama-30b"].param_count == pytest.approx(32.5e9)

    def test_small_large_split(self):
        assert is_small_model(VIT)
        assert not is_small_model(GPT2)
        assert is_large_model(LLAMA2_7B)
        assert is_large_model(LLAMA_30B)
        assert not is_large_model(GPT2)

    def test_gpt2_uses_paper_batch(self):
        assert GPT2.global_batch_size == 16  # paper Fig. 2


class TestModelSpecValidation:
    def test_heads_must_divide_hidden(self):
        with pytest.raises(ValueError, match="not divisible"):
            ModelSpec(
                name="bad",
                display_name="Bad",
                param_count=1e6,
                num_layers=2,
                hidden_size=100,
                num_heads=7,
                seq_len=8,
                vocab_size=10,
                global_batch_size=4,
            )

    @pytest.mark.parametrize("field,value", [
        ("param_count", 0),
        ("num_layers", 0),
        ("global_batch_size", 0),
    ])
    def test_positive_fields(self, field, value):
        kwargs = dict(
            name="bad", display_name="Bad", param_count=1e6, num_layers=2,
            hidden_size=64, num_heads=4, seq_len=8, vocab_size=10,
            global_batch_size=4,
        )
        kwargs[field] = value
        with pytest.raises(ValueError):
            ModelSpec(**kwargs)


class TestDerivedQuantities:
    def test_fwd_flops_positive_and_scales_with_params(self):
        assert VIT.fwd_flops_per_sample > 0
        assert LLAMA2_7B.fwd_flops_per_sample > GPT2.fwd_flops_per_sample

    def test_max_tensor_parallel_powers_of_two(self):
        # GPT-2 has 25 heads: no power-of-two TP beyond 1.
        assert GPT2.max_tensor_parallel(8) == 1
        # LLaMA-2 has 32 heads: TP up to the node limit.
        assert LLAMA2_7B.max_tensor_parallel(8) == 8
        assert LLAMA2_7B.max_tensor_parallel(4) == 4

    def test_valid_tp_non_power_of_two(self):
        # 25 heads admit tp=5 (divides heads and hidden 1600).
        assert GPT2.valid_tp(5, node_limit=8)
        assert not GPT2.valid_tp(2, node_limit=8)

    def test_valid_pp_divides_layers(self):
        assert GPT2.valid_pp(8)  # 48 layers
        assert not GPT2.valid_pp(5)
        assert GPT2.layers_per_stage(6) == 8

    def test_layers_per_stage_rejects_invalid(self):
        with pytest.raises(InfeasiblePlanError):
            GPT2.layers_per_stage(7)


class TestModelWorkload:
    def test_defaults_to_spec_batch(self):
        wl = ModelWorkload(spec=GPT2)
        assert wl.global_batch_size == GPT2.global_batch_size
        assert wl.name == GPT2.name

    def test_override_batch(self):
        wl = ModelWorkload(spec=GPT2, global_batch_size=64)
        assert wl.global_batch_size == 64
