"""Fault-injection harness: plans, injector, retries, quarantine, chaos.

The determinism contract under test (DESIGN.md): the same fault plan +
seeds produces byte-identical run documents, ``.corrupt`` sidecars and
quarantine records across invocations and worker counts, and the empty
plan produces output byte-identical to a sweep with no fault plumbing.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import time

import pytest

from repro.errors import (
    CorruptRunRecordError,
    FaultPlanError,
    InjectedCrash,
    InjectedHang,
    RunTimeoutError,
)
from repro.experiments import RunSpec, RunStore, SweepSpec, run_sweep
from repro.experiments.aggregate import format_failure_table
from repro.experiments.runner import _alarm, _guarded_run, execute_run
from repro.faults import (
    NO_FAULTS,
    NO_FAULTS_NAME,
    FaultPlan,
    FaultRule,
    fault_plan_from_dict,
    fault_plan_to_dict,
    known_fault_plan_names,
    load_fault_plan,
    register_fault_plan,
    resolve_fault_plan,
    save_fault_plan,
)
from repro.sim.metrics import Incident, SimulationResult
from repro.sim.serialization import (
    incident_from_dict,
    incident_to_dict,
    result_to_dict,
)

SMALL = dict(num_jobs=4, nodes=2, gpus_per_node=8, span=1800.0)
CHAOS_SPEC = SweepSpec(
    policies=("rubick-n", "synergy"), seeds=(0, 1, 2), **SMALL
)


def _tree_bytes(root) -> dict[str, bytes]:
    """Relative-path -> content map of every file under ``root``."""
    return {
        str(p.relative_to(root)): p.read_bytes()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


def _dead_pid() -> int:
    """A pid guaranteed dead: a just-reaped child of this process."""
    proc = subprocess.Popen(["true"])
    proc.wait()
    return proc.pid


# ----------------------------------------------------------------------
# Plans: validation, digests, registry, file round-trip
# ----------------------------------------------------------------------
class TestFaultPlans:
    def test_unknown_seam_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault seam"):
            FaultRule(seam="disk-on-fire")

    def test_times_validated_and_normalized(self):
        with pytest.raises(FaultPlanError, match="at least one"):
            FaultRule(seam="worker-crash", times=())
        with pytest.raises(FaultPlanError, match="1-based"):
            FaultRule(seam="worker-crash", times=(0,))
        rule = FaultRule(seam="worker-crash", times=(3, 1, 3, 2))
        assert rule.times == (1, 2, 3)

    def test_digest_is_pinned(self):
        """The tier-1 determinism gate: same plan => same digest, always.

        These literals change exactly when the plan definition changes —
        update them deliberately, never to quiet a flake (a flake here
        means digests stopped being a pure function of plan content).
        """
        assert NO_FAULTS.digest == "fa3d9f52"
        assert resolve_fault_plan("chaos-smoke").digest == "92856773"

    def test_serialization_round_trip_preserves_digest(self):
        plan = resolve_fault_plan("chaos-smoke")
        clone = fault_plan_from_dict(
            json.loads(json.dumps(fault_plan_to_dict(plan)))
        )
        assert clone == plan
        assert clone.digest == plan.digest

    def test_file_plans_resolve_via_prefix(self, tmp_path):
        plan = FaultPlan(
            name="custom",
            rules=(FaultRule("policy-round", run_match="*-s9-*"),),
        )
        path = tmp_path / "plan.json"
        save_fault_plan(plan, path)
        assert load_fault_plan(path) == plan
        assert resolve_fault_plan(f"file:{path}") == plan

    def test_file_plan_version_checked(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"format_version": 99, "name": "x"}))
        with pytest.raises(FaultPlanError, match="format version"):
            load_fault_plan(path)

    def test_registry_rejects_duplicates_and_unknowns(self):
        assert NO_FAULTS_NAME in known_fault_plan_names()
        with pytest.raises(FaultPlanError, match="already registered"):
            register_fault_plan(FaultPlan(name=NO_FAULTS_NAME))
        with pytest.raises(FaultPlanError, match="unknown fault plan"):
            resolve_fault_plan("definitely-not-a-plan")

    def test_empty_plan_has_no_injector(self):
        assert NO_FAULTS.injector("any-key") is None


# ----------------------------------------------------------------------
# Injector: occurrence counting, seam isolation, mangling
# ----------------------------------------------------------------------
class TestInjector:
    def test_occurrence_counts_span_attempts(self):
        """``times=(2,)`` fires on the second invocation only — the
        counter lives on the injector, which the runner creates once per
        run, so occurrence semantics are attempt-spanning by design."""
        plan = FaultPlan(
            name="t", rules=(FaultRule("worker-crash", times=(2,)),)
        )
        injector = plan.injector("run-a")
        injector.check("worker-crash")  # occurrence 1: silent
        with pytest.raises(InjectedCrash) as err:
            injector.check("worker-crash")  # occurrence 2: fires
        assert err.value.occurrence == 2
        injector.check("worker-crash")  # occurrence 3: silent again

    def test_seams_count_independently(self):
        plan = FaultPlan(
            name="t", rules=(FaultRule("worker-hang", times=(1,)),)
        )
        injector = plan.injector("run-a")
        injector.check("worker-crash")  # different seam: no effect
        with pytest.raises(InjectedHang):
            injector.check("worker-hang")

    def test_run_match_glob_gates_firing(self):
        plan = FaultPlan(
            name="t",
            rules=(FaultRule("worker-crash", run_match="*-s2-*"),),
        )
        plan.injector("rubick-n-base-s0-aaaa").check("worker-crash")
        with pytest.raises(InjectedCrash):
            plan.injector("rubick-n-base-s2-aaaa").check("worker-crash")

    def test_mangle_truncates_deterministically(self):
        plan = FaultPlan(
            name="t", rules=(FaultRule("store-record", times=(1,)),)
        )
        text = "x" * 100
        first = plan.injector("k").mangle("store-record", text)
        second = plan.injector("k").mangle("store-record", text)
        assert first == second == "x" * 50
        # Occurrence 2 passes the text through untouched.
        injector = plan.injector("k")
        injector.mangle("store-record", text)
        assert injector.mangle("store-record", text) == text


# ----------------------------------------------------------------------
# Runner guard: timeout, retries, quarantine, leases
# ----------------------------------------------------------------------
class TestRunnerGuard:
    RUN = RunSpec(policy="rubick-n", **SMALL)

    def test_alarm_bounds_wall_clock(self):
        with pytest.raises(RunTimeoutError, match="wall-clock budget"):
            with _alarm(0.05):
                time.sleep(5)

    def test_alarm_without_budget_is_noop(self):
        with _alarm(None):
            pass
        with _alarm(0):
            pass

    def test_worker_hang_seam_raises_instead_of_sleeping(self):
        plan = FaultPlan(
            name="t", rules=(FaultRule("worker-hang", times=(1,)),)
        )
        with pytest.raises(InjectedHang):
            execute_run(self.RUN, injector=plan.injector(self.RUN.run_key))

    def test_transient_crash_recovers_on_retry(self, tmp_path):
        plan = FaultPlan(
            name="t", rules=(FaultRule("worker-crash", times=(1,)),)
        )
        store = RunStore(tmp_path)
        status, execution, failure = _guarded_run(
            self.RUN, store, plan, 2, None
        )
        assert status == "ok" and failure is None
        assert store.completed_keys() == {self.RUN.run_key}
        assert store.failed_keys() == set()

    def test_poison_run_quarantines_with_attempt_history(self, tmp_path):
        plan = FaultPlan(
            name="t",
            rules=(FaultRule("worker-crash", times=(1, 2, 3)),),
        )
        store = RunStore(tmp_path)
        status, execution, failure = _guarded_run(
            self.RUN, store, plan, 3, None
        )
        assert status == "failed" and execution is None
        assert [a["attempt"] for a in failure["attempts"]] == [1, 2, 3]
        assert failure["error"] == "InjectedCrash"
        assert store.failed_keys() == {self.RUN.run_key}
        assert store.completed_keys() == set()
        # The persisted quarantine record is the returned doc, verbatim.
        assert store.load_failure(self.RUN.run_key) == failure

    def test_live_foreign_lease_skips_run(self, tmp_path):
        store = RunStore(tmp_path)
        store.leases_dir.mkdir(parents=True, exist_ok=True)
        store.lease_path_for(self.RUN.run_key).write_text(
            json.dumps({"pid": 1})  # init: alive, never us
        )
        status, execution, failure = _guarded_run(
            self.RUN, store, None, 2, None
        )
        assert status == "leased"
        assert execution is None and failure is None
        # The foreign lease was respected, not deleted.
        assert store.lease_path_for(self.RUN.run_key).exists()

    def test_dead_owner_lease_is_stolen(self, tmp_path):
        store = RunStore(tmp_path)
        store.leases_dir.mkdir(parents=True, exist_ok=True)
        store.lease_path_for("some-run").write_text(
            json.dumps({"pid": _dead_pid()})
        )
        assert store.acquire_lease("some-run")
        store.release_lease("some-run")
        assert not store.lease_path_for("some-run").exists()


# ----------------------------------------------------------------------
# Store hardening: corruption detection, sidecars, stale-tmp GC
# ----------------------------------------------------------------------
class TestStoreHardening:
    RUN = RunSpec(policy="rubick-n", **SMALL)

    @pytest.fixture()
    def populated(self, tmp_path):
        store = RunStore(tmp_path)
        run_sweep([self.RUN], out_dir=str(tmp_path))
        return store

    def test_truncated_record_is_corrupt_not_json_error(self, populated):
        store = populated
        path = store.path_for(self.RUN.run_key)
        path.write_text(path.read_text()[:40])
        with pytest.raises(CorruptRunRecordError, match="truncated write"):
            store.load_record(self.RUN.run_key)

    def test_version_drift_is_corrupt(self, populated):
        store = populated
        record = store.load_record(self.RUN.run_key)
        record["format_version"] = 999
        store.path_for(self.RUN.run_key).write_text(json.dumps(record))
        with pytest.raises(CorruptRunRecordError, match="unsupported version"):
            store.load_record(self.RUN.run_key)

    def test_missing_record_stays_file_not_found(self, populated):
        with pytest.raises(FileNotFoundError):
            populated.load_record("never-ran")

    def test_resume_quarantines_corrupt_record_and_reruns(self, populated):
        store = populated
        path = store.path_for(self.RUN.run_key)
        good = path.read_bytes()
        path.write_bytes(good[: len(good) // 2])
        messages = []
        outcome = run_sweep(
            [self.RUN], out_dir=str(store.root), resume=True,
            log=messages.append,
        )
        # The torn record moved aside, the run re-executed, and the fresh
        # record is byte-identical to the original (determinism contract).
        assert outcome.skipped == ()
        assert self.RUN.run_key in outcome.results
        sidecar = path.with_name(path.name + ".corrupt")
        assert sidecar.read_bytes() == good[: len(good) // 2]
        assert path.read_bytes() == good
        assert any("quarantined corrupt record" in m for m in messages)
        # The sidecar never masquerades as a completed run.
        assert store.completed_keys() == {self.RUN.run_key}

    def test_gc_collects_dead_owner_tmp_only(self, tmp_path):
        store = RunStore(tmp_path)
        dead = store.runs_dir / f".a.jsonl.{_dead_pid()}.tmp"
        dead.write_text("{")
        live = store.runs_dir / ".b.jsonl.1.tmp"  # init: alive forever
        live.write_text("{")
        unparsable = store.runs_dir / ".c.jsonl.notapid.tmp"
        unparsable.write_text("{")
        removed = store.gc_stale_tmp()
        assert dead.name in removed and unparsable.name in removed
        assert not dead.exists() and not unparsable.exists()
        assert live.exists()


# ----------------------------------------------------------------------
# Chaos sweeps end to end
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def chaos_pair(tmp_path_factory):
    """The same chaos-smoke sweep twice: serial, then two workers."""
    plan = resolve_fault_plan("chaos-smoke")
    outs, outcomes = [], []
    for name, workers in (("chaos-a", 1), ("chaos-b", 2)):
        out = tmp_path_factory.mktemp(name)
        outcomes.append(
            run_sweep(
                CHAOS_SPEC, out_dir=str(out), workers=workers,
                fault_plan=plan, max_attempts=2,
            )
        )
        outs.append(out)
    return outs, outcomes


class TestChaosSweep:
    def test_sweep_completes_with_quarantined_runs(self, chaos_pair):
        (out, _), (outcome, _) = chaos_pair
        # Seed-2 runs poison their policy rounds past the retry budget.
        assert sorted(outcome.failures) == [
            run.run_key
            for run in sorted(CHAOS_SPEC.expand(), key=lambda r: r.run_key)
            if run.seed == 2
        ]
        for doc in outcome.failures.values():
            assert doc["error"] == "SimulationError"
            assert len(doc["attempts"]) == 2
            # Escalation carries the contained policy-error incidents.
            assert all(a["incidents"] for a in doc["attempts"])
        # Every other run recovered and produced a result.
        executed = {r.run_key for r in CHAOS_SPEC.expand()}
        assert set(outcome.results) == executed - set(outcome.failures)

    def test_torn_record_left_a_sidecar(self, chaos_pair):
        (out, _), (outcome, _) = chaos_pair
        sidecars = sorted(p.name for p in out.glob("runs/*.corrupt"))
        assert len(sidecars) == 1
        assert sidecars[0].startswith("synergy-") and "-s1-" in sidecars[0]

    def test_no_tmp_litter_and_no_leases_after_sweep(self, chaos_pair):
        for out in chaos_pair[0]:
            assert list(out.glob("runs/.*.tmp")) == []
            assert list(out.glob("leases/*")) == []

    def test_chaos_is_byte_identical_across_invocations(self, chaos_pair):
        (a, b), _ = chaos_pair
        assert _tree_bytes(a / "runs") == _tree_bytes(b / "runs")
        assert _tree_bytes(a / "failures") == _tree_bytes(b / "failures")

    def test_meta_records_fault_plan_and_failures(self, chaos_pair):
        (out, _), _ = chaos_pair
        meta = json.loads((out / "sweep-meta.jsonl").read_text())
        assert meta["fault_plan"] == "chaos-smoke"
        assert meta["fault_plan_digest"] == "92856773"
        assert meta["failed_runs"] == 2  # one poisoned seed-2 run per policy

    def test_failure_table_renders_quarantined_runs(self, chaos_pair):
        _, (outcome, _) = chaos_pair
        table = format_failure_table(outcome.failures)
        assert "quarantined runs" in table
        assert "SimulationError" in table
        for key in outcome.failures:
            assert key in table

    def test_resume_without_faults_heals_quarantined_runs(
        self, chaos_pair, tmp_path
    ):
        (a, _), _ = chaos_pair
        out = tmp_path / "healed"
        shutil.copytree(a, out)
        outcome = run_sweep(CHAOS_SPEC, out_dir=str(out), resume=True)
        store = RunStore(out)
        assert outcome.failures == {}
        assert store.failed_keys() == set()  # cleared on success
        assert store.completed_keys() == {
            r.run_key for r in CHAOS_SPEC.expand()
        }


class TestZeroFaultByteIdentity:
    def test_no_plan_and_empty_plan_are_byte_identical(self, tmp_path):
        """The empty plan takes the pre-harness path bit for bit."""
        spec = SweepSpec(policies=("rubick-n",), seeds=(0,), **SMALL)
        plain, armed = tmp_path / "plain", tmp_path / "armed"
        run_sweep(spec, out_dir=str(plain))
        run_sweep(
            spec, out_dir=str(armed), fault_plan=NO_FAULTS,
            max_attempts=2, run_timeout=None,
        )
        assert _tree_bytes(plain / "runs") == _tree_bytes(armed / "runs")
        # The empty plan is normalized away: no fault keys in meta, no
        # failures/ directory, nothing a zero-fault diff could trip on.
        meta = json.loads((armed / "sweep-meta.jsonl").read_text())
        assert "fault_plan" not in meta and "failed_runs" not in meta
        assert not (armed / "failures").exists()


# ----------------------------------------------------------------------
# Incident stream serialization
# ----------------------------------------------------------------------
class TestIncidentSerialization:
    def test_sparse_when_absent(self):
        result = SimulationResult(policy_name="p", trace_name="t")
        assert "incidents" not in result_to_dict(result)
        assert "incidents" not in result.summary()

    def test_round_trip(self):
        incident = Incident(
            kind="policy-error", round=7, time=1234.5,
            job_ids=("j1", "j2"), error="ValueError",
            message="boom", traceback_digest="abc123def456",
        )
        assert incident_from_dict(incident_to_dict(incident)) == incident
        sparse = Incident(kind="deadlock", round=0, time=0.0)
        doc = incident_to_dict(sparse)
        assert set(doc) == {"kind", "round", "time"}
        assert incident_from_dict(doc) == sparse
