"""CLI: trace generation, simulation, comparison, profiling."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.sim.serialization import load_result, load_trace

SMALL = ["--nodes", "2", "--gpus-per-node", "8", "--seed", "17"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_policy_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--policy", "nope"])


class TestGenerateTrace:
    def test_writes_loadable_trace(self, tmp_path, capsys):
        out = tmp_path / "t.json"
        rc = main(
            ["generate-trace", *SMALL, "--jobs", "6", "--output", str(out)]
        )
        assert rc == 0
        trace = load_trace(out)
        assert len(trace) == 6
        assert "wrote 6 jobs" in capsys.readouterr().out


class TestSimulateAndCompare:
    def test_simulate_generated_trace(self, tmp_path, capsys):
        out = tmp_path / "r.json"
        rc = main(
            ["simulate", *SMALL, "--jobs", "5", "--policy", "rubick-n",
             "--output", str(out)]
        )
        assert rc == 0
        result = load_result(out)
        assert len(result.records) == 5
        assert "avg_jct_h" in capsys.readouterr().out

    def test_simulate_trace_file(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        main(["generate-trace", *SMALL, "--jobs", "5", "--output",
              str(trace_path)])
        rc = main(
            ["simulate", *SMALL, "--policy", "synergy",
             "--trace", str(trace_path)]
        )
        assert rc == 0

    def test_compare_prints_ratio_table(self, capsys):
        rc = main(
            ["compare", *SMALL, "--jobs", "5",
             "--policies", "rubick-n,synergy"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "rubick-n" in out and "synergy" in out
        assert "(1.00x)" in out

    def test_compare_rejects_unknown_policy(self, capsys):
        rc = main(["compare", *SMALL, "--jobs", "5", "--policies", "nope"])
        assert rc == 2


class TestProfile:
    def test_profile_prints_parameters(self, capsys):
        rc = main(["profile", *SMALL, "--model", "roberta"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "k_bwd" in out and "RMSLE" in out
