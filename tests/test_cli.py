"""CLI: trace generation, simulation, comparison, profiling."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.sim.serialization import load_result, load_trace

SMALL = ["--nodes", "2", "--gpus-per-node", "8", "--seed", "17"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_policy_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--policy", "nope"])


class TestGenerateTrace:
    def test_writes_loadable_trace(self, tmp_path, capsys):
        out = tmp_path / "t.json"
        rc = main(
            ["generate-trace", *SMALL, "--jobs", "6", "--output", str(out)]
        )
        assert rc == 0
        trace = load_trace(out)
        assert len(trace) == 6
        assert "wrote 6 jobs" in capsys.readouterr().out


class TestSimulateAndCompare:
    def test_simulate_generated_trace(self, tmp_path, capsys):
        out = tmp_path / "r.json"
        rc = main(
            ["simulate", *SMALL, "--jobs", "5", "--policy", "rubick-n",
             "--output", str(out)]
        )
        assert rc == 0
        result = load_result(out)
        assert len(result.records) == 5
        assert "avg_jct_h" in capsys.readouterr().out

    def test_simulate_trace_file(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        main(["generate-trace", *SMALL, "--jobs", "5", "--output",
              str(trace_path)])
        rc = main(
            ["simulate", *SMALL, "--policy", "synergy",
             "--trace", str(trace_path)]
        )
        assert rc == 0

    def test_compare_prints_ratio_table(self, capsys):
        rc = main(
            ["compare", *SMALL, "--jobs", "5",
             "--policies", "rubick-n,synergy"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "rubick-n" in out and "synergy" in out
        assert "(1.00x)" in out

    def test_compare_rejects_unknown_policy(self, capsys):
        rc = main(["compare", *SMALL, "--jobs", "5", "--policies", "nope"])
        assert rc == 2


class TestSweep:
    def test_sweep_writes_results_and_prints_table(self, tmp_path, capsys):
        out = tmp_path / "sweep"
        args = ["sweep", "--nodes", "2", "--gpus-per-node", "8",
                "--policies", "rubick-n,synergy", "--seeds", "5",
                "--jobs", "4", "--out", str(out)]
        rc = main(args)
        assert rc == 0
        assert len(list((out / "runs").glob("*.jsonl"))) == 2
        text = capsys.readouterr().out
        assert "avg JCT h" in text and "rubick-n" in text
        assert "executed 2 runs (0 resumed)" in text
        # Re-running with --resume executes nothing but reprints the table.
        rc = main(args + ["--resume"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "executed 0 runs (2 resumed)" in text
        assert "avg JCT h" in text

    def test_sweep_rejects_unknown_policy_and_variant(self, tmp_path, capsys):
        base = ["sweep", "--jobs", "4", "--out", str(tmp_path / "x")]
        assert main(base + ["--policies", "nope"]) == 2
        assert main(base + ["--variants", "weird"]) == 2

    def test_sweep_rejects_malformed_grids(self, tmp_path, capsys):
        base = ["sweep", "--jobs", "4", "--out", str(tmp_path / "x")]
        assert main(base + ["--seeds", "0,0"]) == 2
        assert main(base + ["--seeds", "a"]) == 2
        assert main(base + ["--loads", "fast"]) == 2
        out = capsys.readouterr().out
        assert "invalid sweep grid" in out

    def test_sweep_rejects_unknown_scenario(self, tmp_path, capsys):
        base = ["sweep", "--jobs", "4", "--out", str(tmp_path / "x")]
        assert main(base + ["--scenarios", "nope"]) == 2
        assert "unknown scenarios" in capsys.readouterr().out

    def test_sweep_rejects_missing_replay_file_up_front(self, tmp_path, capsys):
        base = ["sweep", "--jobs", "4", "--out", str(tmp_path / "x")]
        assert main(base + ["--scenarios", "replay:missing.csv"]) == 2
        assert "no such file" in capsys.readouterr().out

    def test_sweep_over_scenarios_prints_grouped_table(self, tmp_path, capsys):
        out = tmp_path / "sweep"
        rc = main(
            ["sweep", "--nodes", "2", "--gpus-per-node", "8",
             "--policies", "rubick-n", "--seeds", "5", "--jobs", "3",
             "--scenarios", "paper-12h,poisson-12h", "--out", str(out)]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "2 scenarios" in text
        assert text.count("poisson-12h") >= 1
        assert len(list((out / "runs").glob("*.jsonl"))) == 2


class TestDynamicsFlag:
    def test_simulate_rejects_unknown_dynamics(self, capsys):
        rc = main(["simulate", "--policy", "rubick-n", "--jobs", "3",
                   "--dynamics", "nope"] + SMALL)
        assert rc == 2
        assert "unknown dynamics" in capsys.readouterr().out

    def test_sweep_rejects_unknown_dynamics(self, tmp_path, capsys):
        base = ["sweep", "--jobs", "4", "--out", str(tmp_path / "x")]
        assert main(base + ["--dynamics", "none,nope"]) == 2
        assert "unknown dynamics" in capsys.readouterr().out

    def test_simulate_with_scale_dynamics_reports_events(self, capsys):
        rc = main(["simulate", "--policy", "rubick-n", "--jobs", "4",
                   "--dynamics", "scaleout-midday"] + SMALL)
        assert rc == 0
        out = capsys.readouterr().out
        # The dynamics summary keys appear once events actually fired.
        assert "cluster_events" in out
        assert "lost_gpu_h" in out

    def test_compare_grows_dynamics_columns_only_when_dynamic(self, capsys):
        args = ["compare", "--policies", "rubick-n,synergy", "--jobs", "4"]
        assert main(args + SMALL) == 0
        static = capsys.readouterr().out
        assert "lost GPU-h" not in static
        assert main(args + ["--dynamics", "scaleout-midday"] + SMALL) == 0
        dynamic = capsys.readouterr().out
        assert "lost GPU-h" in dynamic and "evictions" in dynamic

    def test_sweep_over_dynamics_axis(self, tmp_path, capsys):
        out = tmp_path / "sweep"
        rc = main(
            ["sweep", "--nodes", "2", "--gpus-per-node", "8",
             "--policies", "rubick-n", "--seeds", "5", "--jobs", "3",
             "--dynamics", "none,scaleout-midday", "--out", str(out)]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "2 dynamics" in text
        assert "~scaleout-midday" in text
        assert len(list((out / "runs").glob("*.jsonl"))) == 2


class TestWorkloadCommand:
    def test_list_shows_registered_scenarios(self, capsys):
        assert main(["workload", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("paper-12h", "diurnal-3d", "largemodel-heavy",
                     "multitenant-burst", "paper-12h-flaky",
                     "scaleout-midday"):
            assert name in out
        assert "cluster-dynamics profiles" in out
        assert "flaky" in out

    def test_show_details_one_scenario(self, capsys):
        assert main(["workload", "show", "bursty-mmpp"]) == 0
        out = capsys.readouterr().out
        assert "arrival.kind" in out and "mmpp" in out
        assert main(["workload", "show", "nope"]) == 2

    def test_generate_writes_scenario_trace(self, tmp_path, capsys):
        out = tmp_path / "poisson.json"
        rc = main(
            ["workload", "generate", "poisson-12h", *SMALL,
             "--jobs", "5", "--output", str(out)]
        )
        assert rc == 0
        trace = load_trace(out)
        assert len(trace) == 5
        assert trace.name == "poisson-12h"
        assert "wrote 5 jobs" in capsys.readouterr().out

    def test_generate_converts_replay_fixture(self, tmp_path, capsys):
        out = tmp_path / "replay.json"
        rc = main(
            ["workload", "generate", "replay:tests/data/helios_mini.jsonl",
             *SMALL, "--output", str(out)]
        )
        assert rc == 0
        assert len(load_trace(out)) == 7
        assert main(
            ["workload", "generate", "replay:missing.csv", *SMALL,
             "--output", str(tmp_path / "x.json")]
        ) == 2


class TestProfile:
    def test_profile_prints_parameters(self, capsys):
        rc = main(["profile", *SMALL, "--model", "roberta"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "k_bwd" in out and "RMSLE" in out
