"""The unified plan-evaluation engine: scoring equivalence, memoization,
hit/miss accounting, and versioned per-model invalidation."""

from __future__ import annotations

import dataclasses

import pytest

from repro.cluster import PAPER_CLUSTER, ResourceVector
from repro.models import GPT2, LLAMA2_7B, ROBERTA
from repro.perfmodel import ResourceShape
from repro.planeval import (
    PlanEvalEngine,
    TestbedScorer,
    fused_throughputs,
)
from repro.plans import ExecutionPlan, enumerate_plans
from repro.plans.memory import host_mem_demand_per_node
from repro.scheduler import (
    Job,
    JobSpec,
    PerfModelStore,
    ScaledDpSelector,
    SensitivityAnalyzer,
    default_plan_space,
)

BATCHES = {GPT2.name: 16, ROBERTA.name: 64, LLAMA2_7B.name: 32}


def _local_store(fitted_store, *models) -> PerfModelStore:
    """A private store (mutable without polluting the shared fixture)."""
    store = PerfModelStore()
    for model in models:
        store.add(fitted_store.get(model))
    return store


def _engine(fitted_store) -> PlanEvalEngine:
    return PlanEvalEngine(
        PAPER_CLUSTER,
        perf_store=_local_store(fitted_store, GPT2, ROBERTA, LLAMA2_7B),
    )


def _job(model=GPT2, gpus=4, plan=None) -> Job:
    plan = plan or ExecutionPlan(dp=gpus, ga_steps=max(16 // gpus, 1))
    spec = JobSpec(
        job_id="t", model=model, global_batch=BATCHES[model.name],
        requested=ResourceVector(gpus, gpus * 4, 0.0),
        initial_plan=plan, total_samples=1e5, submit_time=0.0,
    )
    return Job(spec=spec)


class TestFusedScoring:
    """The batched scorer must be bit-identical to per-plan predict calls."""

    @pytest.mark.parametrize("model", [GPT2, ROBERTA, LLAMA2_7B])
    @pytest.mark.parametrize("gpus", [1, 4, 8, 16])
    def test_matches_unfused_predict(self, fitted_store, model, gpus):
        perf = fitted_store.get(model)
        batch = BATCHES[model.name]
        shape = ResourceShape.packed(gpus, cpus=gpus * 4)
        plans = enumerate_plans(
            model, batch, gpus,
            min_gpus_per_node=shape.min_gpus_per_node,
            gpu_mem_budget=PAPER_CLUSTER.node.usable_gpu_mem,
        )
        assert plans, "expected candidate plans for this shape"
        fused = fused_throughputs(perf, plans, shape, batch)
        for plan, thr in zip(plans, fused):
            assert thr == perf.throughput(plan, shape, batch)  # exact

    def test_offload_plans_use_cpu_count(self, fitted_store):
        perf = fitted_store.get(GPT2)
        plan = ExecutionPlan(dp=4, zero=3, ga_steps=4)  # ZeRO-Offload
        lean = ResourceShape.packed(4, cpus=4)
        rich = ResourceShape.packed(4, cpus=32)
        (thr_lean,) = fused_throughputs(perf, [plan], lean, 16)
        (thr_rich,) = fused_throughputs(perf, [plan], rich, 16)
        assert thr_rich > thr_lean
        assert thr_lean == perf.throughput(plan, lean, 16)
        assert thr_rich == perf.throughput(plan, rich, 16)


class TestEquivalence:
    """Engine results equal the direct enumerate-and-predict computation."""

    @pytest.mark.parametrize("model", [GPT2, LLAMA2_7B])
    @pytest.mark.parametrize("gpus", [2, 8, 12])
    def test_best_matches_direct(self, fitted_store, model, gpus):
        engine = _engine(fitted_store)
        perf = fitted_store.get(model)
        batch = BATCHES[model.name]
        shape = ResourceShape.packed(gpus, cpus=gpus * 4)
        space = default_plan_space(model)

        node = PAPER_CLUSTER.node
        densest = max(
            shape.min_gpus_per_node, -(-shape.gpus // max(shape.num_nodes, 1))
        )
        expect_plan, expect_thr = None, 0.0
        for plan in enumerate_plans(
            model, batch, gpus,
            min_gpus_per_node=shape.min_gpus_per_node,
            gpu_mem_budget=node.usable_gpu_mem, space=space,
        ):
            if host_mem_demand_per_node(model, plan, batch, densest) > node.host_mem:
                continue
            thr = perf.throughput(plan, shape, batch)
            if thr > expect_thr:
                expect_plan, expect_thr = plan, thr

        best = engine.best(model, batch, shape)
        if expect_plan is None:
            assert best is None
        else:
            assert best.plan == expect_plan
            assert best.throughput == expect_thr  # exact, not approx

    def test_score_all_matches_predict(self, fitted_store):
        engine = _engine(fitted_store)
        perf = fitted_store.get(GPT2)
        shape = ResourceShape.packed(8, cpus=32)
        scored = engine.score_all(GPT2, 16, shape)
        assert scored
        for plan, thr in scored:
            assert thr == perf.throughput(plan, shape, 16)

    def test_zero_gpus(self, fitted_store):
        engine = _engine(fitted_store)
        assert engine.best(GPT2, 16, ResourceShape.packed(0)) is None
        assert engine.score_all(GPT2, 16, ResourceShape.packed(0)) == ()


class TestStatsAccounting:
    def test_hit_miss_eval_counters(self, fitted_store):
        engine = _engine(fitted_store)
        shape = ResourceShape.packed(4, cpus=16)
        s0 = engine.stats()
        assert (s0.hits, s0.misses, s0.evals, s0.invalidations) == (0, 0, 0, 0)

        a = engine.best(GPT2, 16, shape)
        s1 = engine.stats()
        assert (s1.hits, s1.misses) == (0, 1)
        assert s1.evals > 0

        b = engine.best(GPT2, 16, shape)
        s2 = engine.stats()
        assert (s2.hits, s2.misses) == (1, 1)
        assert s2.evals == s1.evals  # warm hit scores nothing
        assert a is b  # same memo entry

    def test_curve_counts_inner_best_lookups(self, fitted_store):
        engine = _engine(fitted_store)
        engine.curve(GPT2, 16, max_gpus=4)
        misses = engine.stats().misses
        assert misses == 1 + 4  # the curve itself + one best() per GPU count
        engine.curve(GPT2, 16, max_gpus=4)
        assert engine.stats().hits == 1

    def test_cpu_probe_reuses_enumeration(self, fitted_store):
        engine = _engine(fitted_store)
        shape = ResourceShape.packed(4, cpus=16)
        engine.best(GPT2, 16, shape)
        enums = len(engine._enums)
        engine.best(GPT2, 16, shape.with_cpus(17))  # CPU-slope probe
        assert len(engine._enums) == enums  # same shape-class, no re-enum

    def test_snapshot_is_immutable(self, fitted_store):
        engine = _engine(fitted_store)
        snap = engine.stats()
        engine.best(GPT2, 16, ResourceShape.packed(2, cpus=8))
        assert snap.misses == 0  # old snapshot unaffected
        assert engine.stats().misses == 1


class TestVersionedInvalidation:
    def test_refit_invalidates_only_that_model(self, fitted_store):
        store = _local_store(fitted_store, GPT2, ROBERTA)
        engine = PlanEvalEngine(PAPER_CLUSTER, perf_store=store)
        shape = ResourceShape.packed(4, cpus=16)
        gpt2_a = engine.best(GPT2, 16, shape)
        roberta_a = engine.best(ROBERTA, 64, shape)

        store.add(store.get(GPT2))  # online refit of GPT-2 only
        gpt2_b = engine.best(GPT2, 16, shape)
        roberta_b = engine.best(ROBERTA, 64, shape)

        assert gpt2_b is not gpt2_a  # recomputed under the new generation
        assert gpt2_b.throughput == gpt2_a.throughput  # same params, same value
        assert roberta_b is roberta_a  # untouched model stays warm
        assert engine.stats().invalidations == 1

    def test_refit_changes_results_through_the_engine(self, fitted_store):
        store = _local_store(fitted_store, GPT2)
        engine = PlanEvalEngine(PAPER_CLUSTER, perf_store=store)
        shape = ResourceShape.packed(4, cpus=16)
        before = engine.best(GPT2, 16, shape)

        perf = store.get(GPT2)
        slower = perf.with_params(
            dataclasses.replace(perf.params, k_const=perf.params.k_const + 0.5)
        )
        store.add(slower)
        after = engine.best(GPT2, 16, shape)
        assert after.throughput < before.throughput

    def test_manual_invalidate(self, fitted_store):
        engine = _engine(fitted_store)
        shape = ResourceShape.packed(2, cpus=8)
        a = engine.best(GPT2, 16, shape)
        engine.invalidate(GPT2.name)
        b = engine.best(GPT2, 16, shape)
        assert a is not b
        assert engine.stats().invalidations == 1


class TestScaledDpCurveRegression:
    """Regression: the ScaledDpSelector's sensitivity curves must track
    online refits.  The selector's former private ``_curve_cache`` keyed
    entries by the store-wide version (never evicting old generations and
    recomputing *every* job's curve when *any* model refit); routed through
    the engine, curves are invalidated per model and reflect refitted
    parameters immediately."""

    def test_curve_refreshes_after_refit(self, fitted_store):
        store = _local_store(fitted_store, GPT2, ROBERTA)
        analyzer = SensitivityAnalyzer(store, PAPER_CLUSTER)
        selector = ScaledDpSelector(analyzer)
        job = _job(gpus=4, plan=ExecutionPlan(dp=4, ga_steps=4))

        curve_a = selector.curve(job)
        assert selector.curve(job) is curve_a  # memoized while fresh

        perf = store.get(GPT2)
        slower = perf.with_params(
            dataclasses.replace(perf.params, k_const=perf.params.k_const + 0.5)
        )
        store.add(slower)

        curve_b = selector.curve(job)
        assert curve_b is not curve_a
        # The refitted (slower) model must actually show in the curve.
        assert max(curve_b.envelope) < max(curve_a.envelope)

    def test_other_models_curves_survive_refit(self, fitted_store):
        store = _local_store(fitted_store, GPT2, ROBERTA)
        analyzer = SensitivityAnalyzer(store, PAPER_CLUSTER)
        selector = ScaledDpSelector(analyzer)
        gpt2_job = _job(gpus=4, plan=ExecutionPlan(dp=4, ga_steps=4))
        roberta_job = _job(
            model=ROBERTA, gpus=4, plan=ExecutionPlan(dp=4, ga_steps=4)
        )
        selector.curve(gpt2_job)
        roberta_curve = selector.curve(roberta_job)

        store.add(store.get(GPT2))  # refit GPT-2
        assert selector.curve(roberta_job) is roberta_curve


class TestEngineInjection:
    def test_mismatched_store_rejected(self, fitted_store):
        store_a = _local_store(fitted_store, GPT2)
        store_b = _local_store(fitted_store, GPT2)
        engine = PlanEvalEngine(PAPER_CLUSTER, perf_store=store_a)
        with pytest.raises(ValueError, match="different PerfModelStore"):
            SensitivityAnalyzer(store_b, PAPER_CLUSTER, engine=engine)

    def test_mismatched_cluster_rejected(self, fitted_store, small_cluster):
        store = _local_store(fitted_store, GPT2)
        engine = PlanEvalEngine(PAPER_CLUSTER, perf_store=store)
        with pytest.raises(ValueError, match="different ClusterSpec"):
            SensitivityAnalyzer(store, small_cluster, engine=engine)

    def test_selector_curves_use_analyzer_cpu_ratio(self, fitted_store):
        # The injected engine defaults to 4 CPUs/GPU; the analyzer asks for
        # 8 — restricted curves must follow the analyzer, not the engine.
        store = _local_store(fitted_store, GPT2)
        engine = PlanEvalEngine(PAPER_CLUSTER, perf_store=store)
        analyzer = SensitivityAnalyzer(
            store, PAPER_CLUSTER, cpus_per_gpu=8, engine=engine
        )
        selector = ScaledDpSelector(analyzer)
        job = _job(gpus=4, plan=ExecutionPlan(dp=4, zero=3, ga_steps=4))
        curve = selector.curve(job)
        # An offload plan's throughput depends on CPUs: the curve point must
        # equal the restricted best at the 8-CPUs/GPU packed shape.
        shape = ResourceShape.packed(4, cpus=min(32, engine.cpu_cap(4)))
        best = selector.best(job, shape)
        assert best is not None
        assert curve.raw[4].throughput == best.throughput


class TestTestbedScorerPath:
    """The simulator's ground-truth engine equals the direct computation."""

    def test_best_matches_manual_enumeration(self, small_cluster, small_testbed):
        engine = PlanEvalEngine(
            small_cluster, scorer=TestbedScorer(small_testbed)
        )
        gpus, batch = 4, 16
        shape = ResourceShape.packed(
            gpus, node_size=small_cluster.node.num_gpus, cpus=gpus * 4
        )
        best = engine.best(GPT2, batch, shape, check_host_mem=False)

        expect = 0.0
        for plan in enumerate_plans(
            GPT2, batch, gpus,
            min_gpus_per_node=shape.min_gpus_per_node,
            gpu_mem_budget=small_cluster.node.usable_gpu_mem,
            space=default_plan_space(GPT2),
        ):
            if not small_testbed.is_feasible(GPT2, plan, shape, batch):
                continue
            expect = max(
                expect,
                small_testbed.true_throughput(GPT2, plan, shape, batch),
            )
        assert best is not None
        assert best.throughput == expect

    def test_ground_truth_never_invalidates(self, small_cluster, small_testbed):
        engine = PlanEvalEngine(
            small_cluster, scorer=TestbedScorer(small_testbed)
        )
        shape = ResourceShape.packed(
            2, node_size=small_cluster.node.num_gpus, cpus=8
        )
        a = engine.best(GPT2, 16, shape, check_host_mem=False)
        b = engine.best(GPT2, 16, shape, check_host_mem=False)
        assert a is b
        assert engine.stats().invalidations == 0
