"""Shared fixtures: a small testbed, fitted models, and common plans."""

from __future__ import annotations

import pytest

from repro.cluster import PAPER_CLUSTER, ClusterSpec, NodeSpec
from repro.models import GPT2, LLAMA2_7B, ROBERTA
from repro.oracle import SyntheticTestbed, build_perf_model
from repro.scheduler import PerfModelStore


@pytest.fixture(scope="session")
def paper_testbed() -> SyntheticTestbed:
    """One testbed shared by the whole session (hidden truths are cached)."""
    return SyntheticTestbed(PAPER_CLUSTER, seed=1234)


@pytest.fixture(scope="session")
def small_cluster() -> ClusterSpec:
    """A 2-node × 4-GPU cluster for fast scheduler tests."""
    return ClusterSpec(num_nodes=2, node=NodeSpec(num_gpus=4, num_cpus=48))


@pytest.fixture(scope="session")
def small_testbed(small_cluster) -> SyntheticTestbed:
    return SyntheticTestbed(small_cluster, seed=99)


@pytest.fixture(scope="session")
def gpt2_perf(paper_testbed):
    """Fitted performance model for GPT-2 (expensive; share across tests)."""
    perf, report = build_perf_model(
        paper_testbed, GPT2, GPT2.global_batch_size, seed=5
    )
    return perf, report


@pytest.fixture(scope="session")
def fitted_store(paper_testbed) -> PerfModelStore:
    """Perf-model store with the two models most tests use."""
    store = PerfModelStore()
    for model in (GPT2, ROBERTA, LLAMA2_7B):
        perf, _ = build_perf_model(
            paper_testbed, model, model.global_batch_size, seed=5
        )
        store.add(perf)
    return store
