"""Workload subsystem: arrival processes, job mixes, scenario registry.

The load-bearing test here is the golden byte-identity class: the default
(``paper-12h``) scenario must generate traces byte-identical to the
pre-subsystem generator.  The pinned hashes were captured on the commit
*before* the workloads refactor — if one changes, the refactor changed the
paper trace.
"""

from __future__ import annotations

import hashlib
import json
import statistics

import pytest

from repro.cluster import PAPER_CLUSTER, ClusterSpec, NodeSpec
from repro.errors import WorkloadConfigError, WorkloadError
from repro.models import LARGE_MODEL_NAMES
from repro.oracle import SyntheticTestbed
from repro.rng import rng_for
from repro.scheduler import JobPriority
from repro.sim import WorkloadConfig, generate_trace
from repro.sim.serialization import load_trace, save_trace, trace_to_dict
from repro.units import DAY, HOUR
from repro.workloads import (
    DEFAULT_SCENARIO,
    DiurnalArrivals,
    FixedArrivals,
    JobMix,
    MarkovModulatedArrivals,
    PoissonArrivals,
    Scenario,
    UniformPeaksArrivals,
    arrival_from_dict,
    arrival_to_dict,
    list_scenarios,
    resolve_scenario,
    scenario_trace,
    scenario_workload_config,
    validate_gpu_mix,
)

SMALL_CLUSTER = ClusterSpec(num_nodes=2, node=NodeSpec(num_gpus=8))
SPAN = 12 * HOUR


def trace_digest(trace) -> str:
    payload = json.dumps(trace_to_dict(trace), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


class TestGoldenByteIdentity:
    """Default-scenario traces are byte-identical to the pre-PR generator."""

    #: sha256 of the canonical trace JSON, captured pre-refactor.
    GOLDEN = {
        (80, 0, "paper"):
            "2e126701849d5ac1eb973b791d5c28454fc66c0e4139e94338207f7826396962",
        (40, 19, "paper"):
            "0629b1bc1ac908d7f5504c3e91faed729a01e09523d44880da538917be78e1df",
        (6, 17, "small"):
            "b6aebc5dd20a5c3ca845ea729828b1cc05b5ae24d841c56a7789c6460015387f",
    }

    @pytest.mark.parametrize("num_jobs,seed,which", sorted(GOLDEN))
    def test_generate_trace_matches_pre_refactor_bytes(
        self, num_jobs, seed, which
    ):
        cluster = PAPER_CLUSTER if which == "paper" else SMALL_CLUSTER
        config = WorkloadConfig(num_jobs=num_jobs, seed=seed, cluster=cluster)
        trace = generate_trace(
            config, SyntheticTestbed(cluster, seed=seed)
        )
        assert trace_digest(trace) == self.GOLDEN[(num_jobs, seed, which)]

    def test_default_scenario_config_is_the_pre_refactor_config(self):
        config = scenario_workload_config(
            resolve_scenario(DEFAULT_SCENARIO),
            seed=19,
            cluster=PAPER_CLUSTER,
            num_jobs=40,
            span=SPAN,
        )
        assert config == WorkloadConfig(num_jobs=40, seed=19)


class TestArrivalProcesses:
    def rng(self):
        return rng_for(5, "test-arrivals")

    @pytest.mark.parametrize(
        "process",
        [
            UniformPeaksArrivals(),
            PoissonArrivals(),
            MarkovModulatedArrivals(),
            DiurnalArrivals(),
            DiurnalArrivals(weekend_factor=0.3),
        ],
        ids=lambda p: p.kind + (
            "-weekend" if getattr(p, "weekend_factor", 1.0) != 1.0 else ""
        ),
    )
    def test_contract_count_sorted_deterministic(self, process):
        times = process.sample(self.rng(), 50, SPAN)
        assert len(times) == 50
        assert times == sorted(times)
        assert all(t >= 0.0 for t in times)
        assert times == process.sample(self.rng(), 50, SPAN)

    def test_uniform_peaks_matches_the_paper_reference_draws(self):
        """The generic peak walk is draw-for-draw the paper's hardcoded one."""
        rng = self.rng()
        reference = []
        for _ in range(200):
            mode = rng.random()
            if mode < 0.5:
                t = rng.uniform(0.0, SPAN)
            elif mode < 0.75:
                t = rng.normal(0.30 * SPAN, 0.08 * SPAN)
            else:
                t = rng.normal(0.70 * SPAN, 0.08 * SPAN)
            reference.append(float(min(max(t, 0.0), SPAN)))
        assert UniformPeaksArrivals().sample(self.rng(), 200, SPAN) == sorted(
            reference
        )

    def test_poisson_average_rate_matches_target(self):
        times = PoissonArrivals().sample(self.rng(), 400, SPAN)
        assert times[-1] == pytest.approx(SPAN, rel=0.2)

    def test_mmpp_is_burstier_than_poisson(self):
        """Squared coefficient of variation of gaps: MMPP >> 1, Poisson ~1."""

        def gap_cv2(times):
            gaps = [b - a for a, b in zip(times, times[1:])]
            mean = statistics.fmean(gaps)
            return statistics.pvariance(gaps) / mean**2

        poisson = PoissonArrivals().sample(self.rng(), 600, SPAN)
        bursty = MarkovModulatedArrivals().sample(self.rng(), 600, SPAN)
        # Poisson gaps have CV^2 ~ 1; the MMPP's state mixing pushes it
        # well above (measured ~1.6 at the default knobs).
        assert gap_cv2(poisson) < 1.2
        assert gap_cv2(bursty) > 1.4 * gap_cv2(poisson)

    def test_diurnal_peak_hours_beat_trough_hours(self):
        process = DiurnalArrivals(peak_hour=14.0, night_depth=0.1)
        times = process.sample(self.rng(), 900, 3 * DAY)
        hours = [(t / HOUR) % 24.0 for t in times]
        peak = sum(1 for h in hours if 11.0 <= h < 17.0)
        trough = sum(1 for h in hours if h < 3.0 or h >= 23.0)
        assert peak > 2.0 * trough

    def test_diurnal_weekend_factor_quiets_weekends(self):
        process = DiurnalArrivals(weekend_factor=0.2)
        times = process.sample(self.rng(), 1000, 14 * DAY)
        weekend = sum(1 for t in times if int(t // DAY) % 7 >= 5)
        # A uniform week would put 2/7 ~ 29% on the weekend.
        assert weekend / len(times) < 0.15

    def test_fixed_arrivals_replay_and_bounds(self):
        process = FixedArrivals(times=(30.0, 10.0, 20.0))
        assert process.sample(self.rng(), 3, SPAN) == [10.0, 20.0, 30.0]
        assert process.sample(self.rng(), 2, SPAN) == [10.0, 20.0]
        with pytest.raises(WorkloadConfigError, match="3 times"):
            process.sample(self.rng(), 4, SPAN)

    def test_knob_validation(self):
        with pytest.raises(WorkloadConfigError, match="sum to 1.0"):
            UniformPeaksArrivals(background=0.9)
        with pytest.raises(WorkloadConfigError, match="burst_factor"):
            MarkovModulatedArrivals(burst_factor=0.5)
        with pytest.raises(WorkloadConfigError, match="night_depth"):
            DiurnalArrivals(night_depth=0.0)
        with pytest.raises(WorkloadConfigError, match=">= 0"):
            FixedArrivals(times=(-1.0,))

    def test_round_trip_serialization(self):
        for process in (
            UniformPeaksArrivals(),
            PoissonArrivals(),
            MarkovModulatedArrivals(burst_factor=3.0),
            DiurnalArrivals(weekend_factor=0.5),
            FixedArrivals(times=(1.0, 2.0)),
        ):
            data = json.loads(json.dumps(arrival_to_dict(process)))
            assert arrival_from_dict(data) == process
        with pytest.raises(WorkloadConfigError, match="unknown arrival"):
            arrival_from_dict({"kind": "nope"})


class TestMixValidation:
    def test_default_mix_valid_everywhere(self):
        validate_gpu_mix(JobMix().gpu_mix, SMALL_CLUSTER)
        validate_gpu_mix(JobMix().gpu_mix, PAPER_CLUSTER)

    def test_rejects_unnormalized_weights(self):
        with pytest.raises(WorkloadConfigError, match="sum to 1.0"):
            WorkloadConfig(gpu_mix=((1, 0.5), (2, 0.6)))

    def test_rejects_mix_entirely_above_cluster(self):
        with pytest.raises(WorkloadConfigError, match="exceeds the cluster"):
            WorkloadConfig(
                gpu_mix=((32, 0.5), (64, 0.5)), cluster=SMALL_CLUSTER
            )
        # Partially-oversized mixes are fine: the feasibility fix-up clamps.
        WorkloadConfig(gpu_mix=((1, 0.5), (64, 0.5)), cluster=SMALL_CLUSTER)

    def test_rejects_degenerate_entries(self):
        with pytest.raises(WorkloadConfigError, match="positive integers"):
            JobMix(gpu_mix=((0, 1.0),))
        with pytest.raises(WorkloadConfigError, match="non-negative"):
            JobMix(gpu_mix=((1, 1.5), (2, -0.5)))
        with pytest.raises(WorkloadConfigError, match="at least one entry"):
            JobMix(gpu_mix=())

    def test_mix_knob_validation(self):
        with pytest.raises(WorkloadConfigError, match="duration_median"):
            JobMix(duration_median=0.0)
        with pytest.raises(WorkloadConfigError, match="min_duration"):
            JobMix(min_duration=100.0, max_duration=50.0)
        with pytest.raises(WorkloadConfigError, match="unknown model"):
            JobMix(model_weights=(("nope", 1.0),))
        with pytest.raises(WorkloadConfigError, match="large_model_factor"):
            JobMix(large_model_factor=-1.0)

    def test_weights_dict_defaults_to_uniform_sentinel(self):
        assert JobMix().weights_dict() == {}
        heavy = JobMix(large_model_factor=4.0).weights_dict()
        assert all(heavy[name] == 4.0 for name in LARGE_MODEL_NAMES)
        assert heavy["bert"] == 1.0


class TestScenarioRegistry:
    def test_issue_scenarios_registered(self):
        names = {s.name for s in list_scenarios()}
        assert {
            "paper-12h", "poisson-12h", "bursty-mmpp", "diurnal-3d",
            "largemodel-heavy", "multitenant-burst",
        } <= names

    def test_unknown_scenario_raises(self):
        with pytest.raises(WorkloadError, match="unknown scenario"):
            resolve_scenario("nope")

    def test_replay_resolves_dynamically(self):
        scenario = resolve_scenario("replay:tests/data/philly_mini.csv")
        assert scenario.is_replay
        assert scenario.source == "tests/data/philly_mini.csv"
        with pytest.raises(WorkloadError, match="needs a path"):
            resolve_scenario("replay:")

    def test_scenario_needs_exactly_one_source(self):
        with pytest.raises(WorkloadError, match="exactly one"):
            Scenario(name="x", description="both unset")
        with pytest.raises(WorkloadError, match="exactly one"):
            Scenario(
                name="x", description="both set",
                arrival=PoissonArrivals(), source="t.csv",
            )

    def test_scenario_span_overrides_run_span(self):
        config = scenario_workload_config(
            resolve_scenario("diurnal-3d"),
            seed=0, cluster=SMALL_CLUSTER, num_jobs=10, span=SPAN,
        )
        assert config.span == 3 * DAY
        assert config.name == "diurnal-3d"

    def test_replay_scenario_has_no_generator_config(self):
        with pytest.raises(WorkloadError, match="no generator config"):
            scenario_workload_config(
                resolve_scenario("replay:tests/data/philly_mini.csv"),
                seed=0, cluster=SMALL_CLUSTER, num_jobs=10, span=SPAN,
            )


GENERATED_SCENARIOS = [
    s.name for s in list_scenarios() if not s.is_replay
]


class TestScenarioRoundTrips:
    """Every registered scenario generates, serializes and re-loads
    deterministically (same seed → identical bytes)."""

    @pytest.mark.parametrize("name", GENERATED_SCENARIOS)
    def test_generate_serialize_reload_deterministic(self, name, tmp_path):
        scenario = resolve_scenario(name)

        def build():
            return scenario_trace(
                scenario, seed=11, cluster=SMALL_CLUSTER, num_jobs=6,
            )

        first, second = build(), build()
        assert trace_digest(first) == trace_digest(second)
        path = tmp_path / f"{name}.json"
        save_trace(first, path)
        assert trace_digest(load_trace(path)) == trace_digest(first)
        assert len(first) == 6

    def test_different_scenarios_differ(self):
        digests = {
            name: trace_digest(
                scenario_trace(
                    resolve_scenario(name),
                    seed=11, cluster=SMALL_CLUSTER, num_jobs=6,
                )
            )
            for name in ("paper-12h", "poisson-12h", "bursty-mmpp")
        }
        assert len(set(digests.values())) == len(digests)

    def test_multitenant_burst_splits_tenants(self):
        trace = scenario_trace(
            resolve_scenario("multitenant-burst"),
            seed=11, cluster=SMALL_CLUSTER, num_jobs=12,
        )
        priorities = {j.priority for j in trace}
        assert priorities == {JobPriority.GUARANTEED, JobPriority.BEST_EFFORT}
        assert {j.tenant for j in trace} == {"tenant-a", "tenant-b"}

    def test_largemodel_heavy_shifts_the_mix(self):
        def large_jobs(name):
            trace = scenario_trace(
                resolve_scenario(name),
                seed=11, cluster=PAPER_CLUSTER, num_jobs=40,
            )
            return sum(1 for j in trace if j.model_name in LARGE_MODEL_NAMES)

        assert large_jobs("largemodel-heavy") > large_jobs("paper-12h")
