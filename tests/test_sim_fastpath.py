"""Simulation fast path: golden equivalence + calendar/memo/short-circuit units.

The fast path (event calendar, diff-based apply, steady-state policy
short-circuit, throughput memo) must be *byte-identical* to the reference
loop (`Simulator(fast_path=False)`, the pre-PR semantics) for every
registered policy: same `JobRecord` floats, same makespan, same reconfig
accounting.  The golden suite pins that across all 7 policies × 2 seeds plus
the 100-job bench-seed rubick trace the perf trajectory is measured on.
"""

from __future__ import annotations

import pytest

from repro.cluster import PAPER_CLUSTER
from repro.cluster.placement import Placement
from repro.cluster.resources import ResourceVector
from repro.errors import OutOfMemoryError
from repro.models import GPT2, all_models
from repro.oracle import SyntheticTestbed, build_perf_model
from repro.perfmodel import OnlineRefitter
from repro.perfmodel.shape import ResourceShape
from repro.planeval import TestbedScorer
from repro.plans.plan import ExecutionPlan
from repro.scheduler import PerfModelStore
from repro.scheduler.job import Job, JobSpec, JobStatus
from repro.scheduler.registry import POLICIES, make_policy
from repro.scheduler.variants import rubick
from repro.sim import Simulator, WorkloadConfig, generate_trace
from repro.sim.events import COMPLETION_SLACK, EventCalendar
from repro.sim.serialization import result_from_dict, result_to_dict

GOLDEN_SEEDS = (7, 3)
_EPS = 1e-6


# ----------------------------------------------------------------------
# Shared per-seed fixtures (fitting is the expensive part — do it once)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def seeded():
    """seed -> (trace, fitted store) for the golden matrix."""
    out = {}
    for seed in GOLDEN_SEEDS:
        testbed = SyntheticTestbed(PAPER_CLUSTER, seed=seed)
        trace = generate_trace(
            WorkloadConfig(num_jobs=30, seed=seed, name=f"golden-{seed}"),
            testbed,
        )
        store = PerfModelStore()
        for model in all_models():
            perf, _ = build_perf_model(
                testbed, model, model.global_batch_size, seed=seed
            )
            store.add(perf)
        out[seed] = (trace, store)
    return out


def _run(policy_name, seed, trace, store, *, fast, **sim_kwargs):
    sim = Simulator(
        PAPER_CLUSTER,
        make_policy(policy_name),
        testbed=SyntheticTestbed(PAPER_CLUSTER, seed=seed),
        perf_store=store,
        seed=seed,
        fast_path=fast,
        **sim_kwargs,
    )
    return sim.run(trace)


def assert_equivalent(fast, reference):
    """Byte-identity of everything the metrics layer derives results from."""
    assert fast.records == reference.records  # exact float equality
    assert fast.makespan == reference.makespan
    assert fast.profiling_seconds == reference.profiling_seconds
    assert fast.policy_name == reference.policy_name
    assert fast.trace_name == reference.trace_name


# ----------------------------------------------------------------------
# Golden equivalence
# ----------------------------------------------------------------------
class TestGoldenEquivalence:
    @pytest.mark.parametrize("policy_name", sorted(POLICIES))
    @pytest.mark.parametrize("seed", GOLDEN_SEEDS)
    def test_policy_byte_identical(self, seeded, policy_name, seed):
        trace, store = seeded[seed]
        fast = _run(policy_name, seed, trace, store, fast=True)
        reference = _run(policy_name, seed, trace, store, fast=False)
        assert_equivalent(fast, reference)
        assert reference.policy_skips == 0

    def test_bench_seed_100_job_rubick(self):
        """The acceptance config: the trace BENCH_simspeed.json measures."""
        testbed = SyntheticTestbed(PAPER_CLUSTER, seed=7)
        trace = generate_trace(
            WorkloadConfig(num_jobs=100, seed=7, name="overheads"), testbed
        )
        store = PerfModelStore()
        for model in all_models():
            perf, _ = build_perf_model(
                testbed, model, model.global_batch_size, seed=7
            )
            store.add(perf)
        fast = _run("rubick", 7, trace, store, fast=True)
        reference = _run("rubick", 7, trace, store, fast=False)
        assert_equivalent(fast, reference)
        # The short-circuit actually fired — identity above proves soundness.
        assert fast.policy_skips > 0
        assert (
            fast.policy_invocations + fast.policy_skips
            == reference.policy_invocations
        )

    def test_online_refitter_disables_short_circuit(self, seeded):
        """Refit observations happen in `_apply`; skipping would starve them."""
        seed = 7
        trace, _ = seeded[seed]
        results = {}
        for fast in (True, False):
            store = PerfModelStore()  # private store: refits mutate it
            results[fast] = _run(
                "rubick", seed, trace, store, fast=fast,
                online_refitter=OnlineRefitter(
                    error_threshold=0.02, min_new_samples=1
                ),
            )
        assert_equivalent(results[True], results[False])
        assert results[True].policy_skips == 0


# ----------------------------------------------------------------------
# Event calendar
# ----------------------------------------------------------------------
def _job(job_id, *, throughput, samples_left, status=JobStatus.RUNNING,
         pause_until=0.0, priority=None):
    from repro.scheduler.job import JobPriority

    plan = ExecutionPlan(dp=2, ga_steps=8)
    spec = JobSpec(
        job_id=job_id, model=GPT2, global_batch=GPT2.global_batch_size,
        requested=ResourceVector(gpus=2, cpus=8),
        initial_plan=plan, total_samples=samples_left, submit_time=0.0,
        priority=priority or JobPriority.GUARANTEED,
    )
    job = Job(spec=spec, status=status)
    job.plan = plan
    job.placement = Placement({0: ResourceVector(gpus=2, cpus=8)})
    job.throughput = throughput
    job.pause_until = pause_until
    return job


class _Arrival:
    def __init__(self, submit_time):
        self.submit_time = submit_time


def _reference_next_event(now, tick_interval, arrivals, active):
    """The pre-PR full scan, verbatim."""
    candidates = [now + tick_interval]
    if arrivals:
        candidates.append(arrivals[0].submit_time)
    for job in active:
        if not job.is_running or job.throughput <= 0:
            continue
        start = max(
            now, job.pause_until if job.status == JobStatus.PAUSED else now
        )
        candidates.append(start + job.remaining_samples / job.throughput)
    return max(min(candidates), now + _EPS)


class TestEventCalendar:
    def test_arrival_cursor_drains_in_order(self):
        arrivals = [_Arrival(t) for t in (1.0, 2.0, 2.0, 5.0)]
        cal = EventCalendar(arrivals, tick_interval=300.0)
        assert cal.first_arrival_time() == 1.0
        assert [a.submit_time for a in cal.pop_arrivals(2.5)] == [1.0, 2.0, 2.0]
        assert cal.has_arrivals
        assert cal.next_event_time(2.5, []) == 5.0  # arrival before tick
        assert [a.submit_time for a in cal.pop_arrivals(10.0)] == [5.0]
        assert not cal.has_arrivals

    def test_matches_reference_scan(self):
        """Early-out and exact fallback agree with the pre-PR formula."""
        jobs = [
            _job("a", throughput=10.0, samples_left=1e5),
            _job("b", throughput=2.0, samples_left=100.0),  # completes soon
            _job("c", throughput=5.0, samples_left=1e6,
                 status=JobStatus.PAUSED, pause_until=50.0),
            _job("d", throughput=0.0, samples_left=1e5),  # no progress
            _job("q", throughput=0.0, samples_left=1e5,
                 status=JobStatus.QUEUED),
        ]
        cal = EventCalendar([], tick_interval=300.0)
        for job in jobs:
            cal.track(job, 0.0)
        got = cal.next_event_time(0.0, jobs)
        assert got == _reference_next_event(0.0, 300.0, [], jobs)
        assert got == pytest.approx(50.0)  # job b: 100 / 2.0

    def test_tick_early_out_skips_exact_scan(self):
        jobs = [_job("a", throughput=1.0, samples_left=1e9)]
        cal = EventCalendar([], tick_interval=300.0)
        cal.track(jobs[0], 0.0)
        assert cal.next_event_time(0.0, jobs) == 300.0
        assert cal.fast_rounds == 1 and cal.exact_scans == 0
        # A completion within the slack of the tick forces the exact scan.
        near = _job("b", throughput=1.0, samples_left=300.0 + COMPLETION_SLACK / 2)
        cal.track(near, 0.0)
        got = cal.next_event_time(0.0, jobs + [near])
        assert cal.exact_scans == 1
        assert got == _reference_next_event(0.0, 300.0, [], jobs + [near])

    def test_invalidation_voids_stale_events(self):
        job = _job("a", throughput=100.0, samples_left=100.0)  # completes at 1s
        cal = EventCalendar([], tick_interval=300.0)
        cal.track(job, 0.0)
        assert cal.next_event_time(0.0, [job]) == pytest.approx(1.0)
        # Preemption: the old completion event must not survive.
        job.status = JobStatus.QUEUED
        job.throughput = 0.0
        cal.invalidate(job.job_id)
        assert cal.next_event_time(0.0, [job]) == 300.0  # tick only
        # Re-track after a new allocation (lower throughput, later finish).
        job.status = JobStatus.RUNNING
        job.throughput = 1.0
        cal.track(job, 10.0)
        assert cal.next_event_time(10.0, [job]) == pytest.approx(110.0)

    def test_paused_job_anchor_uses_pause_until(self):
        job = _job("a", throughput=10.0, samples_left=100.0,
                   status=JobStatus.PAUSED, pause_until=40.0)
        cal = EventCalendar([], tick_interval=300.0)
        cal.track(job, 0.0)
        assert cal.next_event_time(0.0, [job]) == pytest.approx(50.0)

    def test_stale_heap_entries_are_discarded_lazily(self):
        cal = EventCalendar([], tick_interval=300.0)
        job = _job("a", throughput=100.0, samples_left=100.0)
        for anchor in (0.0, 1.0, 2.0):  # three re-tracks -> two stale entries
            cal.track(job, anchor)
        assert len(cal._heap) == 3
        cal.next_event_time(2.0, [job])
        assert len(cal._heap) == 1  # the two stale epochs were popped


# ----------------------------------------------------------------------
# Throughput memo (TestbedScorer)
# ----------------------------------------------------------------------
class TestThroughputMemo:
    def _scorer_with_counter(self, **testbed_kwargs):
        testbed = SyntheticTestbed(PAPER_CLUSTER, seed=7, **testbed_kwargs)
        calls = {"n": 0}
        inner = testbed.true_throughput

        def counting(*args, **kwargs):
            calls["n"] += 1
            return inner(*args, **kwargs)

        testbed.true_throughput = counting
        return TestbedScorer(testbed), testbed, calls

    def test_hit_costs_no_testbed_query(self):
        scorer, _, calls = self._scorer_with_counter()
        plan = ExecutionPlan(dp=2, ga_steps=8)
        shape = ResourceShape.packed(2, node_size=8, cpus=8)
        first = scorer.true_throughput(GPT2, plan, shape, 16)
        assert calls["n"] == 1
        again = scorer.true_throughput(GPT2, plan, shape, 16)
        assert calls["n"] == 1  # memo hit
        assert again == first

    def test_oom_is_memoized(self):
        scorer, _, calls = self._scorer_with_counter()
        plan = ExecutionPlan(dp=1, ga_steps=1)  # 1 GPU, full batch: OOMs
        shape = ResourceShape.packed(1, node_size=8, cpus=4)
        biggest = max(all_models(), key=lambda m: m.param_count)
        with pytest.raises(OutOfMemoryError):
            scorer.true_throughput(biggest, plan, shape, 16)
        assert calls["n"] == 1
        with pytest.raises(OutOfMemoryError):
            scorer.true_throughput(biggest, plan, shape, 16)
        assert calls["n"] == 1  # cached infeasibility, no re-query

    def test_noise_only_touches_measure_not_the_memo(self):
        """Ground truth is noise-free, so the memo never goes stale."""
        scorer, testbed, _ = self._scorer_with_counter(measurement_noise=0.3)
        plan = ExecutionPlan(dp=2, ga_steps=8)
        shape = ResourceShape.packed(2, node_size=8, cpus=8)
        cached = scorer.true_throughput(GPT2, plan, shape, 16)
        noisy = [
            testbed.measure(GPT2, plan, shape, 16, run_id=i) for i in (0, 1)
        ]
        assert noisy[0] != noisy[1]  # the noisy path stays noisy...
        assert cached == scorer.true_throughput(GPT2, plan, shape, 16)
        # ...and the memoized ground truth bypasses it entirely.
        assert cached not in noisy


# ----------------------------------------------------------------------
# Steady-state short-circuit
# ----------------------------------------------------------------------
class TestSteadyState:
    def test_non_reactive_policy_never_skips(self, seeded):
        trace, store = seeded[7]
        policy = make_policy("simple")
        policy.reactive = False  # instance override
        sim = Simulator(
            PAPER_CLUSTER, policy,
            testbed=SyntheticTestbed(PAPER_CLUSTER, seed=7),
            perf_store=store, seed=7,
        )
        result = sim.run(trace)
        assert result.policy_skips == 0
        assert result.policy_invocations == result.sim_rounds

    def test_rubick_blocks_on_queued_best_effort_and_closed_gates(self):
        policy = rubick()

        class Ctx:
            reconfig_delta = 78.0

        runner = _job("r", throughput=5.0, samples_left=1e6)
        runner.run_seconds = 1e6  # gate comfortably open
        assert policy.steady_state([runner], Ctx()) is True

        gated = _job("g", throughput=5.0, samples_left=1e6)
        gated.run_seconds = 100.0
        gated.reconfig_count = 3  # (100 - 4*78)/100 << 0.97: gate closed
        assert policy.steady_state([runner, gated], Ctx()) is False

        from repro.scheduler.job import JobPriority

        best_effort = _job("be", throughput=0.0, samples_left=1e6,
                           status=JobStatus.QUEUED,
                           priority=JobPriority.BEST_EFFORT)
        assert policy.steady_state([runner, best_effort], Ctx()) is False

        queued_guaranteed = _job("qg", throughput=0.0, samples_left=1e6,
                                 status=JobStatus.QUEUED)
        assert policy.steady_state([runner, queued_guaranteed], Ctx()) is True


# ----------------------------------------------------------------------
# Serialization of the perf counters
# ----------------------------------------------------------------------
class TestPerfCounterSerialization:
    def test_counters_roundtrip_and_wall_time_stays_out(self, seeded):
        trace, store = seeded[7]
        result = _run("antman", 7, trace, store, fast=True)
        assert result.policy_skips > 0  # antman steady-states quickly
        doc = result_to_dict(result)
        assert "policy_wall_seconds" not in doc  # nondeterministic: not persisted
        assert "sim_wall_seconds" not in doc
        loaded = result_from_dict(doc)
        assert loaded.policy_skips == result.policy_skips
        assert loaded.sim_rounds == result.sim_rounds
        assert loaded.policy_invocations == result.policy_invocations
        assert loaded.records == result.records

    def test_pre_fastpath_documents_still_load(self, seeded):
        trace, store = seeded[7]
        doc = result_to_dict(_run("antman", 7, trace, store, fast=True))
        for legacy_missing in ("policy_skips", "sim_rounds"):
            doc.pop(legacy_missing)
        loaded = result_from_dict(doc)
        assert loaded.policy_skips == 0 and loaded.sim_rounds == 0
