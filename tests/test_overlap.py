"""The overlap function f_k: bounds, limits, monotonicity."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.perfmodel import overlap

durations = st.floats(min_value=1e-6, max_value=1e4, allow_nan=False)
degrees = st.floats(min_value=1.0, max_value=64.0, allow_nan=False)


class TestLimits:
    def test_k1_is_sum(self):
        assert overlap(1.0, 3.0, 4.0) == pytest.approx(7.0)

    def test_large_k_is_max(self):
        assert overlap(100.0, 3.0, 4.0) == pytest.approx(4.0)

    def test_zero_spans_short_circuit(self):
        assert overlap(2.0, 0.0, 5.0) == 5.0
        assert overlap(2.0, 5.0, 0.0) == 5.0
        assert overlap(2.0, 0.0, 0.0) == 0.0

    def test_k_below_one_rejected(self):
        with pytest.raises(ValueError):
            overlap(0.5, 1.0, 1.0)


class TestProperties:
    @given(k=degrees, x=durations, y=durations)
    def test_bounded_between_max_and_sum(self, k, x, y):
        value = overlap(k, x, y)
        assert max(x, y) <= value * (1 + 1e-9)
        assert value <= (x + y) * (1 + 1e-9)

    @given(k=degrees, x=durations, y=durations)
    def test_symmetry(self, k, x, y):
        assert overlap(k, x, y) == pytest.approx(overlap(k, y, x))

    @given(x=durations, y=durations)
    def test_monotone_decreasing_in_k(self, x, y):
        ks = [1.0, 2.0, 4.0, 8.0, 32.0]
        values = [overlap(k, x, y) for k in ks]
        for lo, hi in zip(values[1:], values[:-1]):
            assert lo <= hi * (1 + 1e-9)

    @given(k=degrees, x=durations, y=durations, scale=st.floats(0.1, 10.0))
    def test_positively_homogeneous(self, k, x, y, scale):
        assert overlap(k, scale * x, scale * y) == pytest.approx(
            scale * overlap(k, x, y), rel=1e-6
        )

    @given(k=degrees, x=durations)
    def test_extreme_ratio_stable(self, k, x):
        # A microscopic second span must not blow up the combination.
        value = overlap(k, x, x * 1e-12)
        assert value == pytest.approx(x, rel=1e-6) or value >= x
