"""Sweep subsystem: grid determinism, persistence, resume, parallel equality."""

from __future__ import annotations

import json

import pytest

from repro.experiments import (
    RunSpec,
    RunStore,
    SweepSpec,
    aggregate,
    build_trace,
    default_tenants,
    format_sweep_table,
    run_sweep,
)
from repro.scheduler.job import JobPriority
from repro.units import DAY

SMALL = dict(num_jobs=4, nodes=2, gpus_per_node=8, span=1800.0)
SPEC = SweepSpec(policies=("rubick-n", "synergy"), seeds=(0, 1), **SMALL)


class TestSpec:
    def test_expand_deterministic(self):
        first = SPEC.expand()
        second = SweepSpec(
            policies=("rubick-n", "synergy"), seeds=(0, 1), **SMALL
        ).expand()
        assert first == second
        keys = [run.run_key for run in first]
        assert keys == [run.run_key for run in second]
        assert len(set(keys)) == len(keys) == 4

    def test_run_key_sensitive_to_every_knob(self):
        base = RunSpec(policy="rubick-n", **SMALL)
        assert base.run_key == RunSpec(policy="rubick-n", **SMALL).run_key
        for change in (
            {"policy": "synergy"},
            {"seed": 3},
            {"variant": "mt"},
            {"load_factor": 2.0},
            {"large_model_factor": 4.0},
        ):
            other = RunSpec(**{**base.to_dict(), **change})
            assert other.run_key != base.run_key, change

    def test_trace_fingerprint_excludes_policy_only(self):
        a = RunSpec(policy="rubick-n", **SMALL)
        b = RunSpec(policy="synergy", **SMALL)
        c = RunSpec(policy="rubick-n", seed=9, **SMALL)
        assert a.trace_fingerprint == b.trace_fingerprint
        assert a.trace_fingerprint != c.trace_fingerprint

    def test_json_round_trip(self):
        run = RunSpec(policy="sia", variant="mt", seed=2, load_factor=1.5)
        again = RunSpec.from_dict(json.loads(json.dumps(run.to_dict())))
        assert again == run
        spec = SweepSpec(policies=("rubick", "sia"), seeds=(0, 4))
        assert SweepSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        ) == spec

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown policy"):
            RunSpec(policy="nope")
        with pytest.raises(ValueError, match="unknown trace variant"):
            RunSpec(policy="rubick", variant="weird")
        with pytest.raises(ValueError, match="duplicate"):
            SweepSpec(policies=("rubick",), seeds=(1, 1))
        with pytest.raises(ValueError, match="at least one"):
            SweepSpec(policies=())
        with pytest.raises(ValueError, match="at least one"):
            SweepSpec(policies=("rubick",), seeds=())

    def test_default_tenants_only_for_mt(self):
        mt = default_tenants(RunSpec(policy="rubick-n", variant="mt", **SMALL))
        assert mt is not None
        assert mt["tenant-a"].gpu_quota == 16
        assert mt["tenant-b"].gpu_quota == 0
        assert default_tenants(RunSpec(policy="rubick-n", **SMALL)) is None

    def test_build_trace_shared_across_policies(self):
        a = build_trace(RunSpec(policy="rubick-n", **SMALL))
        b = build_trace(RunSpec(policy="synergy", **SMALL))
        assert a is b  # same fingerprint -> memoized
        assert len(a) == SMALL["num_jobs"]


class TestScenarioAxis:
    """The workload-scenario axis: SHA-stable keys, expansion, build."""

    def test_default_scenario_keys_unchanged_since_pre_axis(self):
        """Pinned pre-scenario-axis run keys: old sweep dirs keep resuming."""
        a = RunSpec(policy="rubick-n", **SMALL)
        b = RunSpec(policy="sia", variant="mt", seed=2, load_factor=1.5)
        assert a.run_key == "rubick-n-base-s0-f364deeb"
        assert b.run_key == "sia-mt-s2-b7ee5d64"

    def test_non_default_scenario_changes_the_key(self):
        base = RunSpec(policy="rubick-n", **SMALL)
        other = RunSpec(policy="rubick-n", scenario="poisson-12h", **SMALL)
        assert other.run_key != base.run_key
        assert other.trace_fingerprint != base.trace_fingerprint
        assert other.trace_label == "poisson-12h"

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            RunSpec(policy="rubick-n", scenario="nope", **SMALL)
        with pytest.raises(ValueError, match="duplicate"):
            SweepSpec(
                policies=("rubick-n",),
                scenarios=("poisson-12h", "poisson-12h"),
            )

    def test_legacy_documents_load_without_scenario(self):
        run = RunSpec(policy="rubick-n", **SMALL)
        legacy = run.to_dict()
        legacy.pop("scenario")
        assert RunSpec.from_dict(legacy) == run
        spec_data = SweepSpec(policies=("rubick-n",), **SMALL).to_dict()
        spec_data.pop("scenarios")
        assert SweepSpec.from_dict(spec_data) == SweepSpec(
            policies=("rubick-n",), **SMALL
        )

    def test_expand_iterates_scenarios_outermost(self):
        spec = SweepSpec(
            policies=("rubick-n", "synergy"),
            scenarios=("paper-12h", "poisson-12h"),
            **SMALL,
        )
        runs = spec.expand()
        assert [r.scenario for r in runs] == (
            ["paper-12h"] * 2 + ["poisson-12h"] * 2
        )
        assert len({r.run_key for r in runs}) == 4

    def test_scenario_span_override_reaches_the_config(self):
        run = RunSpec(policy="rubick-n", scenario="diurnal-3d", **SMALL)
        assert run.workload_config().span == 3 * DAY

    def test_replay_scenario_builds_from_fixture(self):
        run = RunSpec(
            policy="rubick-n",
            scenario="replay:tests/data/philly_mini.csv",
            **SMALL,
        )
        trace = build_trace(run)
        assert len(trace) == 12  # fixture rows with status Pass
        assert trace.name == "replay-philly_mini"

    def test_scenario_tenant_split_implies_tenants(self):
        run = RunSpec(policy="rubick-n", scenario="multitenant-burst", **SMALL)
        tenants = default_tenants(run)
        assert tenants is not None
        assert tenants["tenant-a"].gpu_quota == 16
        trace = build_trace(run)
        assert {j.priority for j in trace} == {
            JobPriority.GUARANTEED, JobPriority.BEST_EFFORT,
        }

    def test_mt_variant_honors_scenario_fraction_without_double_split(self):
        """scenario split + mt variant = ONE split at the scenario's
        fraction (not a silent re-split at the variant default)."""
        from repro.workloads import Scenario, register_scenario
        from repro.workloads.arrivals import PoissonArrivals

        register_scenario(
            Scenario(
                name="all-guaranteed-test",
                description="degenerate split: everything guaranteed",
                arrival=PoissonArrivals(),
                guaranteed_fraction=1.0,
            ),
            replace=True,
        )
        run = RunSpec(
            policy="rubick-n", scenario="all-guaranteed-test", variant="mt",
            **SMALL,
        )
        trace = build_trace(run)
        # A re-split at the default 0.5 would demote ~half to best-effort.
        assert all(j.priority is JobPriority.GUARANTEED for j in trace)
        assert trace.name == "mt"

    def test_multi_scenario_aggregation_groups_rows(self):
        spec = SweepSpec(
            policies=("rubick-n",),
            scenarios=("paper-12h", "poisson-12h"),
            **SMALL,
        )
        outcome = run_sweep(spec, workers=1)
        cells = aggregate(outcome.pairs())
        assert [c.scenario for c in cells] == ["paper-12h", "poisson-12h"]
        text = format_sweep_table(cells)
        assert text.splitlines()[0].startswith("scenario")
        assert "poisson-12h" in text


@pytest.fixture(scope="module")
def serial_sweep(tmp_path_factory):
    out = tmp_path_factory.mktemp("serial")
    outcome = run_sweep(SPEC, out_dir=str(out), workers=1)
    return out, outcome


class TestDynamicsAxis:
    """The cluster-dynamics axis: digest transparency, inheritance, expand."""

    def test_empty_dynamics_is_digest_transparent(self):
        plain = RunSpec(policy="rubick-n", **SMALL)
        inherit = RunSpec(policy="rubick-n", dynamics="", **SMALL)
        assert inherit.run_key == plain.run_key
        assert "dynamics" not in plain.to_dict()
        # Pinned pre-axis key (same as TestScenarioAxis): still stable.
        assert plain.run_key == "rubick-n-base-s0-f364deeb"

    def test_explicit_dynamics_changes_the_key(self):
        plain = RunSpec(policy="rubick-n", **SMALL)
        flaky = RunSpec(policy="rubick-n", dynamics="flaky", **SMALL)
        none = RunSpec(policy="rubick-n", dynamics="none", **SMALL)
        assert flaky.run_key != plain.run_key
        assert none.run_key != plain.run_key  # explicit override is identity
        assert flaky.trace_label.endswith("~flaky")

    def test_effective_dynamics_inherits_the_scenario(self):
        inherit = RunSpec(
            policy="rubick-n", scenario="paper-12h-flaky", **SMALL
        )
        assert inherit.effective_dynamics == "flaky"
        override = RunSpec(
            policy="rubick-n", scenario="paper-12h-flaky",
            dynamics="none", **SMALL
        )
        assert override.effective_dynamics == "none"
        assert RunSpec(policy="rubick-n", **SMALL).effective_dynamics == "none"

    def test_unknown_dynamics_rejected(self):
        with pytest.raises(ValueError, match="unknown dynamics"):
            RunSpec(policy="rubick-n", dynamics="nope", **SMALL)
        with pytest.raises(ValueError, match="duplicate"):
            SweepSpec(policies=("rubick-n",), dynamics=("flaky", "flaky"))

    def test_expand_iterates_dynamics_inside_scenarios(self):
        spec = SweepSpec(
            policies=("rubick-n",), dynamics=("none", "flaky"), **SMALL
        )
        runs = spec.expand()
        assert [r.dynamics for r in runs] == ["none", "flaky"]
        assert len({r.run_key for r in runs}) == len(runs)

    def test_legacy_documents_load_without_dynamics(self):
        run = RunSpec(policy="rubick-n", dynamics="flaky", **SMALL)
        data = run.to_dict()
        assert data["dynamics"] == "flaky"
        legacy = RunSpec(policy="rubick-n", **SMALL).to_dict()
        assert "dynamics" not in legacy
        assert RunSpec.from_dict(legacy).dynamics == ""
        spec_data = SweepSpec(policies=("rubick-n",), **SMALL).to_dict()
        assert "dynamics" not in spec_data
        assert SweepSpec.from_dict(spec_data).dynamics == ("",)

    def test_trace_memo_shared_across_dynamics(self):
        """Traces are byte-identical across dynamics profiles, so the
        per-process memo must not rebuild them per dynamics value."""
        from repro.experiments.runner import _trace_memo_key

        plain = RunSpec(policy="rubick-n", **SMALL)
        flaky = RunSpec(policy="rubick-n", dynamics="flaky", **SMALL)
        assert _trace_memo_key(plain) == _trace_memo_key(flaky)
        assert build_trace(plain) is build_trace(flaky)  # memo hit

    def test_dynamic_run_executes_with_events(self):
        from repro.experiments.runner import execute_run, run_cluster_events

        run = RunSpec(
            policy="rubick-n", num_jobs=4, nodes=2, gpus_per_node=8,
            span=1800.0, dynamics="scaleout-midday",
        )
        events = run_cluster_events(run)
        assert [e.kind for e in events] == ["scale-up"]
        assert events[0].time == 900.0  # half the run's span
        execution = execute_run(run)
        assert execution.result.cluster_events == 1

    def test_dynamics_table_columns_only_when_dynamic(self):
        runs = [
            RunSpec(policy="rubick-n", dynamics="scaleout-midday", **SMALL),
            RunSpec(policy="synergy", dynamics="scaleout-midday", **SMALL),
        ]
        outcome = run_sweep(runs)
        cells = aggregate(outcome.pairs())
        assert any(c.dynamic for c in cells)
        table = format_sweep_table(cells)
        assert "lost GPU-h" in table and "evictions" in table
        static = format_sweep_table(aggregate(run_sweep(
            [RunSpec(policy="rubick-n", **SMALL)]
        ).pairs()))
        assert "lost GPU-h" not in static


class TestRunnerPersistence:
    def test_every_run_persisted_once(self, serial_sweep):
        out, outcome = serial_sweep
        store = RunStore(out)
        keys = {run.run_key for run in outcome.runs}
        assert store.completed_keys() == keys
        assert set(outcome.results) == keys
        run, result = store.load(next(iter(keys)))
        assert run.run_key in keys
        assert len(result.records) == SMALL["num_jobs"]

    def test_spec_and_meta_written(self, serial_sweep):
        out, _ = serial_sweep
        spec = SweepSpec.from_dict(
            json.loads((out / "sweep-spec.json").read_text())
        )
        assert spec == SPEC
        meta = [
            json.loads(line)
            for line in (out / "sweep-meta.jsonl").read_text().splitlines()
        ]
        assert meta[0]["executed_runs"] == 4
        assert set(meta[0]["run_wall_seconds"]) == set(outcome_keys(SPEC))

    def test_resume_runs_only_the_missing(self, serial_sweep):
        out, outcome = serial_sweep
        store = RunStore(out)
        victim = outcome.runs[0].run_key
        store.path_for(victim).unlink()
        again = run_sweep(SPEC, out_dir=str(out), workers=1, resume=True)
        assert set(again.wall_seconds) == {victim}  # only the missing ran
        assert len(again.skipped) == 3
        assert set(again.results) == {run.run_key for run in SPEC.expand()}
        assert store.path_for(victim).exists()

    def test_resume_with_everything_done_is_a_noop(self, serial_sweep):
        out, _ = serial_sweep
        again = run_sweep(SPEC, out_dir=str(out), workers=1, resume=True)
        assert again.wall_seconds == {}
        assert len(again.skipped) == 4
        assert len(again.results) == 4

    def test_duplicate_run_keys_rejected(self):
        run = RunSpec(policy="rubick-n", **SMALL)
        with pytest.raises(ValueError, match="duplicate"):
            run_sweep([run, run])


def outcome_keys(spec: SweepSpec) -> list[str]:
    return [run.run_key for run in spec.expand()]


class TestParallelEquivalence:
    def test_workers2_byte_identical_to_serial(self, serial_sweep, tmp_path):
        serial_out, _ = serial_sweep
        parallel_out = tmp_path / "parallel"
        outcome = run_sweep(SPEC, out_dir=str(parallel_out), workers=2)
        assert set(outcome.results) == set(outcome_keys(SPEC))
        serial_store, parallel_store = RunStore(serial_out), RunStore(parallel_out)
        for key in outcome_keys(SPEC):
            assert (
                parallel_store.path_for(key).read_bytes()
                == serial_store.path_for(key).read_bytes()
            ), key


class TestAggregation:
    def test_cells_aggregate_across_seeds(self, serial_sweep):
        _, outcome = serial_sweep
        cells = aggregate(outcome.pairs())
        assert [c.policy for c in cells] == ["rubick-n", "synergy"]
        for cell in cells:
            assert cell.seeds == (0, 1)
            assert cell.avg_jct_h.lo <= cell.avg_jct_h.mean <= cell.avg_jct_h.hi

    def test_table_renders_policies_and_spread(self, serial_sweep):
        _, outcome = serial_sweep
        text = format_sweep_table(aggregate(outcome.pairs()), title="T")
        assert text.startswith("T\n")
        assert "rubick-n" in text and "synergy" in text
        assert "seeds" in text

    def test_in_memory_sweep_no_files(self, tmp_path):
        run = RunSpec(policy="rubick-n", seed=3, **SMALL)
        outcome = run_sweep([run], workers=1)
        assert list(tmp_path.iterdir()) == []
        assert outcome.one(policy="rubick-n").records
        assert outcome.skipped == ()
