"""Sweep subsystem: grid determinism, persistence, resume, parallel equality."""

from __future__ import annotations

import json

import pytest

from repro.experiments import (
    RunSpec,
    RunStore,
    SweepSpec,
    aggregate,
    build_trace,
    default_tenants,
    format_sweep_table,
    run_sweep,
)

SMALL = dict(num_jobs=4, nodes=2, gpus_per_node=8, span=1800.0)
SPEC = SweepSpec(policies=("rubick-n", "synergy"), seeds=(0, 1), **SMALL)


class TestSpec:
    def test_expand_deterministic(self):
        first = SPEC.expand()
        second = SweepSpec(
            policies=("rubick-n", "synergy"), seeds=(0, 1), **SMALL
        ).expand()
        assert first == second
        keys = [run.run_key for run in first]
        assert keys == [run.run_key for run in second]
        assert len(set(keys)) == len(keys) == 4

    def test_run_key_sensitive_to_every_knob(self):
        base = RunSpec(policy="rubick-n", **SMALL)
        assert base.run_key == RunSpec(policy="rubick-n", **SMALL).run_key
        for change in (
            {"policy": "synergy"},
            {"seed": 3},
            {"variant": "mt"},
            {"load_factor": 2.0},
            {"large_model_factor": 4.0},
        ):
            other = RunSpec(**{**base.to_dict(), **change})
            assert other.run_key != base.run_key, change

    def test_trace_fingerprint_excludes_policy_only(self):
        a = RunSpec(policy="rubick-n", **SMALL)
        b = RunSpec(policy="synergy", **SMALL)
        c = RunSpec(policy="rubick-n", seed=9, **SMALL)
        assert a.trace_fingerprint == b.trace_fingerprint
        assert a.trace_fingerprint != c.trace_fingerprint

    def test_json_round_trip(self):
        run = RunSpec(policy="sia", variant="mt", seed=2, load_factor=1.5)
        again = RunSpec.from_dict(json.loads(json.dumps(run.to_dict())))
        assert again == run
        spec = SweepSpec(policies=("rubick", "sia"), seeds=(0, 4))
        assert SweepSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        ) == spec

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown policy"):
            RunSpec(policy="nope")
        with pytest.raises(ValueError, match="unknown trace variant"):
            RunSpec(policy="rubick", variant="weird")
        with pytest.raises(ValueError, match="duplicate"):
            SweepSpec(policies=("rubick",), seeds=(1, 1))
        with pytest.raises(ValueError, match="at least one"):
            SweepSpec(policies=())
        with pytest.raises(ValueError, match="at least one"):
            SweepSpec(policies=("rubick",), seeds=())

    def test_default_tenants_only_for_mt(self):
        mt = default_tenants(RunSpec(policy="rubick-n", variant="mt", **SMALL))
        assert mt is not None
        assert mt["tenant-a"].gpu_quota == 16
        assert mt["tenant-b"].gpu_quota == 0
        assert default_tenants(RunSpec(policy="rubick-n", **SMALL)) is None

    def test_build_trace_shared_across_policies(self):
        a = build_trace(RunSpec(policy="rubick-n", **SMALL))
        b = build_trace(RunSpec(policy="synergy", **SMALL))
        assert a is b  # same fingerprint -> memoized
        assert len(a) == SMALL["num_jobs"]


@pytest.fixture(scope="module")
def serial_sweep(tmp_path_factory):
    out = tmp_path_factory.mktemp("serial")
    outcome = run_sweep(SPEC, out_dir=str(out), workers=1)
    return out, outcome


class TestRunnerPersistence:
    def test_every_run_persisted_once(self, serial_sweep):
        out, outcome = serial_sweep
        store = RunStore(out)
        keys = {run.run_key for run in outcome.runs}
        assert store.completed_keys() == keys
        assert set(outcome.results) == keys
        run, result = store.load(next(iter(keys)))
        assert run.run_key in keys
        assert len(result.records) == SMALL["num_jobs"]

    def test_spec_and_meta_written(self, serial_sweep):
        out, _ = serial_sweep
        spec = SweepSpec.from_dict(
            json.loads((out / "sweep-spec.json").read_text())
        )
        assert spec == SPEC
        meta = [
            json.loads(line)
            for line in (out / "sweep-meta.jsonl").read_text().splitlines()
        ]
        assert meta[0]["executed_runs"] == 4
        assert set(meta[0]["run_wall_seconds"]) == set(outcome_keys(SPEC))

    def test_resume_runs_only_the_missing(self, serial_sweep):
        out, outcome = serial_sweep
        store = RunStore(out)
        victim = outcome.runs[0].run_key
        store.path_for(victim).unlink()
        again = run_sweep(SPEC, out_dir=str(out), workers=1, resume=True)
        assert set(again.wall_seconds) == {victim}  # only the missing ran
        assert len(again.skipped) == 3
        assert set(again.results) == {run.run_key for run in SPEC.expand()}
        assert store.path_for(victim).exists()

    def test_resume_with_everything_done_is_a_noop(self, serial_sweep):
        out, _ = serial_sweep
        again = run_sweep(SPEC, out_dir=str(out), workers=1, resume=True)
        assert again.wall_seconds == {}
        assert len(again.skipped) == 4
        assert len(again.results) == 4

    def test_duplicate_run_keys_rejected(self):
        run = RunSpec(policy="rubick-n", **SMALL)
        with pytest.raises(ValueError, match="duplicate"):
            run_sweep([run, run])


def outcome_keys(spec: SweepSpec) -> list[str]:
    return [run.run_key for run in spec.expand()]


class TestParallelEquivalence:
    def test_workers2_byte_identical_to_serial(self, serial_sweep, tmp_path):
        serial_out, _ = serial_sweep
        parallel_out = tmp_path / "parallel"
        outcome = run_sweep(SPEC, out_dir=str(parallel_out), workers=2)
        assert set(outcome.results) == set(outcome_keys(SPEC))
        serial_store, parallel_store = RunStore(serial_out), RunStore(parallel_out)
        for key in outcome_keys(SPEC):
            assert (
                parallel_store.path_for(key).read_bytes()
                == serial_store.path_for(key).read_bytes()
            ), key


class TestAggregation:
    def test_cells_aggregate_across_seeds(self, serial_sweep):
        _, outcome = serial_sweep
        cells = aggregate(outcome.pairs())
        assert [c.policy for c in cells] == ["rubick-n", "synergy"]
        for cell in cells:
            assert cell.seeds == (0, 1)
            assert cell.avg_jct_h.lo <= cell.avg_jct_h.mean <= cell.avg_jct_h.hi

    def test_table_renders_policies_and_spread(self, serial_sweep):
        _, outcome = serial_sweep
        text = format_sweep_table(aggregate(outcome.pairs()), title="T")
        assert text.startswith("T\n")
        assert "rubick-n" in text and "synergy" in text
        assert "seeds" in text

    def test_in_memory_sweep_no_files(self, tmp_path):
        run = RunSpec(policy="rubick-n", seed=3, **SMALL)
        outcome = run_sweep([run], workers=1)
        assert list(tmp_path.iterdir()) == []
        assert outcome.one(policy="rubick-n").records
        assert outcome.skipped == ()
