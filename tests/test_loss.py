"""Synthetic loss process: the accuracy-preservation physics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import BERT, GPT2
from repro.plans import ExecutionPlan, ZeroStage
from repro.training import (
    LossCurveConfig,
    expected_loss,
    max_loss_difference,
    relative_difference_curve,
    simulate_loss,
    simulate_reconfigured_loss,
)

CFG = LossCurveConfig(model=GPT2, global_batch=16, seed=3, steps=600)
PLAN_A = ExecutionPlan(dp=8, ga_steps=2)
PLAN_B = ExecutionPlan(dp=4, zero=ZeroStage.ZERO_DP, ga_steps=4)


class TestExpectedCurve:
    def test_monotone_decreasing(self):
        curve = expected_loss(CFG)
        assert np.all(np.diff(curve) <= 0)

    def test_starts_near_ln_vocab(self):
        curve = expected_loss(CFG)
        assert curve[0] == pytest.approx(np.log(GPT2.vocab_size), rel=0.1)

    def test_floor_above_zero(self):
        assert CFG.floor_loss > 0


class TestSimulatedRuns:
    def test_deterministic_per_seed_and_plan(self):
        a = simulate_loss(CFG, PLAN_A)
        b = simulate_loss(CFG, PLAN_A)
        assert np.array_equal(a, b)

    def test_seed_changes_move_curve_more_than_plan_changes(self):
        ref = simulate_loss(CFG, PLAN_A)
        other_plan = simulate_loss(CFG, PLAN_B)
        other_seed = simulate_loss(
            LossCurveConfig(model=GPT2, global_batch=16, seed=4, steps=600),
            PLAN_A,
        )
        assert max_loss_difference(ref, other_plan) < max_loss_difference(
            ref, other_seed
        )

    def test_splits_ordered_train_val_test(self):
        train = simulate_loss(CFG, PLAN_A, split="train")
        val = simulate_loss(CFG, PLAN_A, split="validation")
        test = simulate_loss(CFG, PLAN_A, split="test")
        assert val.mean() > train.mean()
        assert test.mean() > val.mean()

    def test_unknown_split_rejected(self):
        with pytest.raises(ValueError, match="split"):
            simulate_loss(CFG, PLAN_A, split="dev")


class TestReconfiguredRuns:
    def test_schedule_must_start_at_zero(self):
        with pytest.raises(ValueError):
            simulate_reconfigured_loss(CFG, [(100, PLAN_A)])

    def test_single_plan_schedule_equals_simulate_loss(self):
        direct = simulate_loss(CFG, PLAN_A)
        scheduled = simulate_reconfigured_loss(CFG, [(0, PLAN_A)])
        assert np.array_equal(direct, scheduled)

    def test_reconfiguration_stays_within_seed_envelope(self):
        ref = simulate_loss(CFG, PLAN_A)
        rcfg = simulate_reconfigured_loss(
            CFG, [(0, PLAN_A), (200, PLAN_B), (400, PLAN_A)]
        )
        seed = simulate_loss(
            LossCurveConfig(model=GPT2, global_batch=16, seed=4, steps=600),
            PLAN_A,
        )
        assert max_loss_difference(ref, rcfg) <= max_loss_difference(ref, seed)

    def test_out_of_range_boundary_rejected(self):
        with pytest.raises(ValueError):
            simulate_reconfigured_loss(CFG, [(0, PLAN_A), (9999, PLAN_B)])

    @settings(max_examples=10, deadline=None)
    @given(boundary=st.integers(min_value=1, max_value=599))
    def test_any_boundary_produces_finite_curve(self, boundary):
        curve = simulate_reconfigured_loss(CFG, [(0, PLAN_A), (boundary, PLAN_B)])
        assert np.all(np.isfinite(curve))
        assert np.all(curve > 0)


class TestDiffHelpers:
    def test_relative_difference_zero_for_identical(self):
        a = simulate_loss(CFG, PLAN_A)
        assert np.all(relative_difference_curve(a, a) == 0)

    def test_misaligned_curves_rejected(self):
        a = simulate_loss(CFG, PLAN_A)
        with pytest.raises(ValueError):
            max_loss_difference(a, a[:-1])

    def test_tail_fraction(self):
        cfg_b = LossCurveConfig(model=BERT, global_batch=64, seed=3, steps=600)
        a = simulate_loss(cfg_b, PLAN_A)
        b = simulate_loss(
            LossCurveConfig(model=BERT, global_batch=64, seed=5, steps=600),
            PLAN_A,
        )
        full = max_loss_difference(a, b)
        tail = max_loss_difference(a, b, tail_fraction=0.1)
        assert tail <= full
