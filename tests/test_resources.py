"""ResourceVector arithmetic and ordering, with property-based checks."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster import ResourceVector

res_vectors = st.builds(
    ResourceVector,
    gpus=st.integers(min_value=0, max_value=64),
    cpus=st.integers(min_value=0, max_value=256),
    host_mem=st.floats(min_value=0, max_value=1e12, allow_nan=False),
)


class TestBasics:
    def test_zero(self):
        z = ResourceVector.zero()
        assert z.is_zero
        assert z.gpus == 0 and z.cpus == 0 and z.host_mem == 0

    def test_negative_allowed_as_delta(self):
        delta = ResourceVector(gpus=-1)
        assert delta.gpus == -1

    def test_require_non_negative(self):
        with pytest.raises(ValueError):
            ResourceVector(gpus=-1).require_non_negative()
        vec = ResourceVector(1, 1, 1.0)
        assert vec.require_non_negative() is vec

    def test_add(self):
        a = ResourceVector(1, 2, 3.0)
        b = ResourceVector(4, 5, 6.0)
        assert a + b == ResourceVector(5, 7, 9.0)

    def test_subtract_below_zero_then_clamp(self):
        diff = ResourceVector(1, 1, 1.0) - ResourceVector(2, 0, 0.0)
        assert diff.gpus == -1
        assert diff.clamp_floor() == ResourceVector(0, 1, 1.0)

    def test_repr_is_compact(self):
        text = repr(ResourceVector(2, 8, 4 * 2**30))
        assert "gpu=2" in text and "4.00 GiB" in text


class TestOrdering:
    def test_fits_within_partial_order(self):
        small = ResourceVector(1, 1, 1.0)
        big = ResourceVector(2, 2, 2.0)
        assert small.fits_within(big)
        assert not big.fits_within(small)
        assert big.dominates(small)

    def test_incomparable_vectors(self):
        a = ResourceVector(2, 1, 0.0)
        b = ResourceVector(1, 2, 0.0)
        assert not a.fits_within(b)
        assert not b.fits_within(a)


class TestProperties:
    @given(a=res_vectors, b=res_vectors)
    def test_addition_commutes(self, a, b):
        assert a + b == b + a

    @given(a=res_vectors, b=res_vectors, c=res_vectors)
    def test_addition_associates(self, a, b, c):
        lhs = (a + b) + c
        rhs = a + (b + c)
        assert lhs.gpus == rhs.gpus and lhs.cpus == rhs.cpus
        assert lhs.host_mem == pytest.approx(rhs.host_mem)

    @given(a=res_vectors, b=res_vectors)
    def test_sum_dominates_parts(self, a, b):
        assert (a + b).dominates(a)
        assert (a + b).dominates(b)

    @given(a=res_vectors)
    def test_fits_within_reflexive(self, a):
        assert a.fits_within(a)

    @given(a=res_vectors, b=res_vectors)
    def test_subtract_then_clamp_never_negative(self, a, b):
        clamped = (a - b).clamp_floor()
        assert clamped.gpus >= 0 and clamped.cpus >= 0 and clamped.host_mem >= 0

    @given(a=res_vectors, b=res_vectors)
    def test_add_then_subtract_roundtrips(self, a, b):
        back = (a + b) - b
        assert back.gpus == a.gpus and back.cpus == a.cpus
        # float64 absorption: tolerance scaled to the largest magnitude.
        assert back.host_mem == pytest.approx(a.host_mem, abs=1e-3)
