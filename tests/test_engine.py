"""Discrete-time simulator: lifecycle, penalties, conservation invariants."""

from __future__ import annotations

import pytest

from repro.cluster import ClusterSpec, NodeSpec
from repro.oracle import SyntheticTestbed
from repro.plans import ExecutionPlan
from repro.scheduler import JobPriority, rubick, rubick_n
from repro.scheduler.baselines import SynergyPolicy
from repro.sim import Simulator, Trace, TraceJob, WorkloadConfig, generate_trace

CLUSTER = ClusterSpec(num_nodes=2, node=NodeSpec(num_gpus=8, num_cpus=96))
SEED = 11


def _tiny_trace(testbed, n=8, span=1800.0):
    # LLaMA-30B needs more than this 16-GPU test cluster can profile with
    # the paper's 7-sample minimum; exclude it from the tiny workload.
    return generate_trace(
        WorkloadConfig(
            num_jobs=n, seed=SEED, span=span, cluster=CLUSTER,
            model_weights={"llama-30b": 0.0},
        ),
        testbed,
    )


@pytest.fixture(scope="module")
def testbed():
    return SyntheticTestbed(CLUSTER, seed=SEED)


class TestLifecycle:
    def test_all_jobs_complete(self, testbed):
        trace = _tiny_trace(testbed)
        sim = Simulator(CLUSTER, rubick(), testbed=SyntheticTestbed(CLUSTER, seed=SEED), seed=SEED)
        res = sim.run(trace)
        assert len(res.records) == len(trace)
        assert all(r.finish_time >= r.submit_time for r in res.records)

    def test_makespan_covers_all_jcts(self, testbed):
        trace = _tiny_trace(testbed)
        sim = Simulator(CLUSTER, SynergyPolicy(), testbed=SyntheticTestbed(CLUSTER, seed=SEED), seed=SEED)
        res = sim.run(trace)
        first_submit = min(r.submit_time for r in res.records)
        assert res.makespan == pytest.approx(
            max(r.finish_time for r in res.records) - first_submit
        )

    def test_deterministic_replay(self, testbed):
        trace = _tiny_trace(testbed)
        jcts = []
        for _ in range(2):
            sim = Simulator(
                CLUSTER, rubick(), testbed=SyntheticTestbed(CLUSTER, seed=SEED), seed=SEED
            )
            res = sim.run(trace)
            jcts.append(sorted((r.job_id, round(r.jct, 6)) for r in res.records))
        assert jcts[0] == jcts[1]


class TestWorkAccounting:
    def test_single_job_runtime_matches_duration(self, testbed):
        """A lone job at its requested resources with the best plan finishes
        in about its reference duration."""
        model = "gpt2-1.5b"
        job = TraceJob(
            job_id="solo", model_name=model, submit_time=0.0,
            requested_gpus=8, duration=1200.0,
            initial_plan=ExecutionPlan(dp=8, ga_steps=2), global_batch=16,
        )
        sim = Simulator(
            CLUSTER, rubick(), testbed=SyntheticTestbed(CLUSTER, seed=SEED), seed=SEED
        )
        res = sim.run(Trace(jobs=(job,)))
        record = res.records[0]
        # Rubick may beat the reference duration (better plan), never by an
        # absurd factor, and should not be slower than ~1.3x of it.
        assert 0.3 * 1200 <= record.jct <= 1.3 * 1200

    def test_gpu_seconds_positive_and_bounded(self, testbed):
        trace = _tiny_trace(testbed)
        sim = Simulator(CLUSTER, rubick_n(), testbed=SyntheticTestbed(CLUSTER, seed=SEED), seed=SEED)
        res = sim.run(trace)
        for r in res.records:
            assert r.gpu_seconds > 0
            # Cannot exceed the whole cluster for the job's lifetime.
            assert r.gpu_seconds <= CLUSTER.total_gpus * (r.jct + 1e-6)


class TestReconfigurationCosts:
    def test_reconfig_seconds_track_counts(self, testbed):
        trace = _tiny_trace(testbed, n=12, span=900.0)
        sim = Simulator(
            CLUSTER, rubick(), testbed=SyntheticTestbed(CLUSTER, seed=SEED),
            seed=SEED, reconfig_delta=50.0,
        )
        res = sim.run(trace)
        for r in res.records:
            assert r.reconfig_seconds <= r.reconfig_count * 50.0 + 1e-6

    def test_sla_ratios_recorded(self, testbed):
        trace = _tiny_trace(testbed)
        sim = Simulator(CLUSTER, rubick(), testbed=SyntheticTestbed(CLUSTER, seed=SEED), seed=SEED)
        res = sim.run(trace)
        guar = res.by_priority(JobPriority.GUARANTEED)
        assert guar
        assert all(r.sla_ratio > 0 for r in guar)
