"""Discrete-time simulator: lifecycle, penalties, conservation invariants."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, ClusterSpec, NodeSpec, Placement, ResourceVector
from repro.errors import OutOfMemoryError
from repro.models import GPT2
from repro.oracle import SyntheticTestbed
from repro.plans import ExecutionPlan
from repro.scheduler import (
    Allocation,
    JobPriority,
    JobSpec,
    JobStatus,
    rubick,
    rubick_n,
)
from repro.scheduler.job import Job
from repro.scheduler.baselines import SynergyPolicy
from repro.sim import Simulator, Trace, TraceJob, WorkloadConfig, generate_trace

CLUSTER = ClusterSpec(num_nodes=2, node=NodeSpec(num_gpus=8, num_cpus=96))
SEED = 11


def _tiny_trace(testbed, n=8, span=1800.0):
    # LLaMA-30B needs more than this 16-GPU test cluster can profile with
    # the paper's 7-sample minimum; exclude it from the tiny workload.
    return generate_trace(
        WorkloadConfig(
            num_jobs=n, seed=SEED, span=span, cluster=CLUSTER,
            model_weights={"llama-30b": 0.0},
        ),
        testbed,
    )


@pytest.fixture(scope="module")
def testbed():
    return SyntheticTestbed(CLUSTER, seed=SEED)


class TestLifecycle:
    def test_all_jobs_complete(self, testbed):
        trace = _tiny_trace(testbed)
        sim = Simulator(CLUSTER, rubick(), testbed=SyntheticTestbed(CLUSTER, seed=SEED), seed=SEED)
        res = sim.run(trace)
        assert len(res.records) == len(trace)
        assert all(r.finish_time >= r.submit_time for r in res.records)

    def test_makespan_covers_all_jcts(self, testbed):
        trace = _tiny_trace(testbed)
        sim = Simulator(CLUSTER, SynergyPolicy(), testbed=SyntheticTestbed(CLUSTER, seed=SEED), seed=SEED)
        res = sim.run(trace)
        first_submit = min(r.submit_time for r in res.records)
        assert res.makespan == pytest.approx(
            max(r.finish_time for r in res.records) - first_submit
        )

    def test_deterministic_replay(self, testbed):
        trace = _tiny_trace(testbed)
        jcts = []
        for _ in range(2):
            sim = Simulator(
                CLUSTER, rubick(), testbed=SyntheticTestbed(CLUSTER, seed=SEED), seed=SEED
            )
            res = sim.run(trace)
            jcts.append(sorted((r.job_id, round(r.jct, 6)) for r in res.records))
        assert jcts[0] == jcts[1]


class TestWorkAccounting:
    def test_single_job_runtime_matches_duration(self, testbed):
        """A lone job at its requested resources with the best plan finishes
        in about its reference duration."""
        model = "gpt2-1.5b"
        job = TraceJob(
            job_id="solo", model_name=model, submit_time=0.0,
            requested_gpus=8, duration=1200.0,
            initial_plan=ExecutionPlan(dp=8, ga_steps=2), global_batch=16,
        )
        sim = Simulator(
            CLUSTER, rubick(), testbed=SyntheticTestbed(CLUSTER, seed=SEED), seed=SEED
        )
        res = sim.run(Trace(jobs=(job,)))
        record = res.records[0]
        # Rubick may beat the reference duration (better plan), never by an
        # absurd factor, and should not be slower than ~1.3x of it.
        assert 0.3 * 1200 <= record.jct <= 1.3 * 1200

    def test_gpu_seconds_positive_and_bounded(self, testbed):
        trace = _tiny_trace(testbed)
        sim = Simulator(CLUSTER, rubick_n(), testbed=SyntheticTestbed(CLUSTER, seed=SEED), seed=SEED)
        res = sim.run(trace)
        for r in res.records:
            assert r.gpu_seconds > 0
            # Cannot exceed the whole cluster for the job's lifetime.
            assert r.gpu_seconds <= CLUSTER.total_gpus * (r.jct + 1e-6)


class TestReconfigurationCosts:
    def test_reconfig_seconds_track_counts(self, testbed):
        trace = _tiny_trace(testbed, n=12, span=900.0)
        sim = Simulator(
            CLUSTER, rubick(), testbed=SyntheticTestbed(CLUSTER, seed=SEED),
            seed=SEED, reconfig_delta=50.0,
        )
        res = sim.run(trace)
        for r in res.records:
            assert r.reconfig_seconds <= r.reconfig_count * 50.0 + 1e-6

    def test_reconfig_gpu_seconds_use_held_gpus(self, testbed):
        """Pause GPU-seconds are accumulated from the held placement, so
        they are bounded by cluster size × pause time and are positive
        whenever a pause actually happened."""
        trace = _tiny_trace(testbed, n=12, span=900.0)
        sim = Simulator(
            CLUSTER, rubick(), testbed=SyntheticTestbed(CLUSTER, seed=SEED),
            seed=SEED, reconfig_delta=50.0,
        )
        res = sim.run(trace)
        for r in res.records:
            assert (
                r.reconfig_gpu_seconds
                <= CLUSTER.total_gpus * r.reconfig_seconds + 1e-6
            )
            if r.reconfig_seconds > 0:
                assert r.reconfig_gpu_seconds > 0
        if any(r.reconfig_count for r in res.records):
            assert res.reconfig_gpu_hour_fraction > 0

    def test_sla_ratios_recorded(self, testbed):
        trace = _tiny_trace(testbed)
        sim = Simulator(CLUSTER, rubick(), testbed=SyntheticTestbed(CLUSTER, seed=SEED), seed=SEED)
        res = sim.run(trace)
        guar = res.by_priority(JobPriority.GUARANTEED)
        assert guar
        assert all(r.sla_ratio > 0 for r in guar)


class TestRequeueStateConsistency:
    """A re-queued job must never keep a stale, non-empty placement."""

    def _running_job(self, job_id="jr") -> tuple[Job, Placement]:
        plan = ExecutionPlan(dp=2, ga_steps=8)
        spec = JobSpec(
            job_id=job_id, model=GPT2, global_batch=GPT2.global_batch_size,
            requested=ResourceVector(gpus=2, cpus=8, host_mem=0.0),
            initial_plan=plan, total_samples=1e5, submit_time=0.0,
        )
        job = Job(spec=spec)
        placement = Placement({0: ResourceVector(gpus=2, cpus=8)})
        job.status = JobStatus.RUNNING
        job.start_time = 0.0
        job.placement = placement
        job.plan = plan
        job.throughput = 5.0
        return job, placement

    def _sim_and_cluster(self, job, placement):
        sim = Simulator(
            CLUSTER, rubick_n(),
            testbed=SyntheticTestbed(CLUSTER, seed=SEED), seed=SEED,
        )
        cluster = Cluster(CLUSTER)
        cluster.apply(job.job_id, placement)
        return sim, cluster

    def _assert_clean_requeue(self, job, cluster, now):
        assert job.status == JobStatus.QUEUED
        assert job.placement.is_empty
        assert job.plan is None
        assert job.throughput == 0.0
        assert job.last_queue_enter == now
        assert cluster.placement_of(job.job_id).is_empty

    def test_failed_launch_clears_placement(self):
        """Over-committed placement -> PlacementError -> clean requeue."""
        job, placement = self._running_job()
        sim, cluster = self._sim_and_cluster(job, placement)
        too_big = Placement(
            {0: ResourceVector(gpus=CLUSTER.node.num_gpus + 1, cpus=1)}
        )
        sim._apply({job.job_id: Allocation(too_big, job.plan)}, [job],
                   cluster, now=100.0)
        self._assert_clean_requeue(job, cluster, 100.0)

    def test_oom_launch_clears_placement(self):
        job, placement = self._running_job()
        sim, cluster = self._sim_and_cluster(job, placement)

        def boom(*args, **kwargs):
            raise OutOfMemoryError("plan does not fit")

        sim.testbed.true_throughput = boom
        # diff=False: the fast path deliberately skips re-querying an
        # unchanged configuration (ground truth is deterministic), so the
        # launch-time OOM requeue is exercised through the reference mode.
        sim._apply({job.job_id: Allocation(placement, job.plan)}, [job],
                   cluster, now=200.0, diff=False)
        self._assert_clean_requeue(job, cluster, 200.0)

    def test_preemption_clears_placement(self):
        job, placement = self._running_job()
        sim, cluster = self._sim_and_cluster(job, placement)
        sim._apply({}, [job], cluster, now=300.0)
        self._assert_clean_requeue(job, cluster, 300.0)

    def test_node_failure_eviction_clears_placement(self):
        """Cluster-dynamics eviction goes through the same clean requeue."""
        from repro.cluster.dynamics import ClusterEvent, NODE_FAIL
        from repro.sim.events import EventCalendar
        from repro.sim.metrics import SimulationResult

        job, placement = self._running_job()
        sim, cluster = self._sim_and_cluster(job, placement)
        result = SimulationResult(policy_name="p", trace_name="t")
        sim._apply_cluster_event(
            ClusterEvent(time=400.0, kind=NODE_FAIL, node_id=0),
            cluster, {job.job_id: job}, 400.0,
            EventCalendar([], 300.0), result,
        )
        self._assert_clean_requeue(job, cluster, 400.0)
        assert job.restart_count == 1
        assert job.pending_restart_penalty == sim.restart_penalty
        assert result.evictions == 1
        assert not cluster.nodes[0].up


class TestOomUnderScaleAndDynamics:
    """Launch-time OOM requeue across loop modes and cluster dynamics.

    The transient-OOM requeue (``_apply``'s narrow ``OutOfMemoryError``
    handler) is normal operation, not a fault: both simulator loops must
    absorb it without incidents, stale placements, or lost jobs — also
    while dynamics evict and restore a node mid-trace.
    """

    @pytest.fixture(scope="class")
    def fitted_store(self):
        """Pre-fitted models so profiling never touches the flaky oracle."""
        from repro.models import all_models
        from repro.oracle import build_perf_model
        from repro.scheduler import PerfModelStore

        testbed = SyntheticTestbed(CLUSTER, seed=SEED)
        store = PerfModelStore()
        for model in all_models():
            if model.name == "llama-30b":
                continue
            perf, _ = build_perf_model(
                testbed, model, model.global_batch_size, seed=SEED
            )
            store.add(perf)
        return store

    def _events(self):
        from repro.cluster.dynamics import (
            ClusterEvent,
            NODE_FAIL,
            NODE_RECOVER,
        )

        return (
            ClusterEvent(time=900.0, kind=NODE_FAIL, node_id=1),
            ClusterEvent(time=1800.0, kind=NODE_RECOVER, node_id=1),
        )

    @pytest.mark.parametrize("scale_mode", [False, True],
                             ids=["default-loop", "scale-loop"])
    @pytest.mark.parametrize("dynamic", [False, True],
                             ids=["static", "dynamics"])
    def test_transient_oom_requeues_and_completes(
        self, fitted_store, scale_mode, dynamic
    ):
        import sys

        testbed = SyntheticTestbed(CLUSTER, seed=SEED)
        trace = _tiny_trace(testbed, n=8, span=1800.0)
        sim = Simulator(
            CLUSTER, rubick_n(), testbed=testbed, perf_store=fitted_store,
            seed=SEED, scale_mode=scale_mode,
        )
        real = sim.scorer.true_throughput
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            # Only the launch-time query (`_apply`) is OOM-requeued;
            # admission-time SLA baselines must keep seeing the real
            # oracle.  Raising at the wrapper also keeps the scorer's
            # infeasibility memo unpoisoned, so the retry can succeed.
            if sys._getframe(1).f_code.co_name == "_apply":
                calls["n"] += 1
                if calls["n"] <= 3:
                    raise OutOfMemoryError("transient launch OOM")
            return real(*args, **kwargs)

        sim.scorer.true_throughput = flaky
        events = self._events() if dynamic else ()
        res = sim.run(trace, cluster_events=events)
        # The first launches OOM'd (the oracle really was exercised past
        # its flaky prefix), yet every job finished with clean state.
        assert calls["n"] > 3
        assert len(res.records) == len(trace)
        assert all(r.finish_time >= r.submit_time for r in res.records)
        # OOM requeue is normal control flow: no incident recorded.
        assert res.incidents == []
        if dynamic:
            assert res.cluster_events == len(events)
