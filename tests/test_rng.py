"""Deterministic seed-derivation behaviour."""

from __future__ import annotations

from repro.rng import derive_seed, rng_for


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_scope_separates_streams(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_base_seed_separates_streams(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_scope_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_no_concatenation_collision(self):
        # ("ab",) and ("a", "b") must not collide.
        assert derive_seed(1, "ab") != derive_seed(1, "a", "b")


class TestRngFor:
    def test_same_scope_same_draws(self):
        a = rng_for(7, "x").random(5)
        b = rng_for(7, "x").random(5)
        assert (a == b).all()

    def test_different_scope_different_draws(self):
        a = rng_for(7, "x").random(5)
        b = rng_for(7, "y").random(5)
        assert not (a == b).all()
