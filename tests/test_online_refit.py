"""Online model refitting (paper §4.3 continuous fitting)."""

from __future__ import annotations

import pytest

from repro.cluster import ClusterSpec, NodeSpec, PAPER_CLUSTER
from repro.models import GPT2
from repro.oracle import (
    SyntheticTestbed,
    build_perf_model,
    collect_samples,
    default_profile_configs,
)
from repro.perfmodel import OnlineRefitter, ResourceShape
from repro.plans import ExecutionPlan
from repro.scheduler import rubick
from repro.sim import Simulator, WorkloadConfig, generate_trace

PLAN = ExecutionPlan(dp=8, ga_steps=2)
SHAPE = ResourceShape.packed(8, cpus=32)


@pytest.fixture(scope="module")
def fitted(paper_testbed):
    perf, _ = build_perf_model(paper_testbed, GPT2, 16, seed=3)
    configs = default_profile_configs(paper_testbed, GPT2, 16)
    samples = collect_samples(paper_testbed, GPT2, 16, configs)
    return perf, samples


class TestObserve:
    def test_accurate_observation_no_refit(self, fitted):
        perf, samples = fitted
        refitter = OnlineRefitter(error_threshold=0.10)
        refitter.register_profiling_samples(GPT2, samples)
        realized = perf.throughput(PLAN, SHAPE, 16)  # zero error
        out = refitter.observe(perf, GPT2, PLAN, SHAPE, 16, realized)
        assert out is perf
        assert not refitter.events

    def test_large_error_triggers_refit(self, fitted):
        perf, samples = fitted
        refitter = OnlineRefitter(error_threshold=0.10, min_new_samples=1)
        refitter.register_profiling_samples(GPT2, samples)
        realized = perf.throughput(PLAN, SHAPE, 16) * 0.6  # 40% off
        out = refitter.observe(perf, GPT2, PLAN, SHAPE, 16, realized)
        assert out is not perf
        assert len(refitter.events) == 1
        assert refitter.events[0].trigger_error > 0.10
        # The refit pulls the prediction toward the observation.
        new_pred = out.throughput(PLAN, SHAPE, 16)
        old_pred = perf.throughput(PLAN, SHAPE, 16)
        assert abs(new_pred - realized) < abs(old_pred - realized)

    def test_min_new_samples_prevents_thrash(self, fitted):
        perf, samples = fitted
        refitter = OnlineRefitter(error_threshold=0.05, min_new_samples=5)
        refitter.register_profiling_samples(GPT2, samples)
        realized = perf.throughput(PLAN, SHAPE, 16) * 0.5
        out = refitter.observe(perf, GPT2, PLAN, SHAPE, 16, realized)
        assert out is perf  # only 1 observation accumulated so far

    def test_window_caps_observations(self, fitted):
        perf, _ = fitted
        refitter = OnlineRefitter(error_threshold=10.0, max_observations=4)
        for i in range(10):
            refitter.observe(perf, GPT2, PLAN, SHAPE, 16, 10.0 + i)
        assert refitter.observation_count(GPT2) == 4

    def test_non_positive_observation_ignored(self, fitted):
        perf, _ = fitted
        refitter = OnlineRefitter()
        out = refitter.observe(perf, GPT2, PLAN, SHAPE, 16, 0.0)
        assert out is perf
        assert refitter.observation_count(GPT2) == 0


class TestSimulatorIntegration:
    def test_refitter_runs_inside_simulation(self):
        cluster = ClusterSpec(num_nodes=2, node=NodeSpec(num_gpus=8))
        testbed = SyntheticTestbed(cluster, seed=31)
        trace = generate_trace(
            WorkloadConfig(
                num_jobs=6, seed=31, span=1200.0, cluster=cluster,
                model_weights={"llama-30b": 0.0},
            ),
            testbed,
        )
        refitter = OnlineRefitter(error_threshold=0.02, min_new_samples=1)
        sim = Simulator(
            cluster, rubick(),
            testbed=SyntheticTestbed(cluster, seed=31), seed=31,
            online_refitter=refitter,
        )
        res = sim.run(trace)
        assert len(res.records) == len(trace)
        # With a 2% threshold, at least some observations were recorded.
        total_obs = sum(
            refitter.observation_count(tj.model) for tj in trace
        )
        assert total_obs > 0

    def test_store_version_invalidates_caches(self, fitted_store):
        from repro.scheduler import SensitivityAnalyzer

        analyzer = SensitivityAnalyzer(fitted_store, PAPER_CLUSTER)
        curve_a = analyzer.gpu_curve(GPT2, 16, max_gpus=4)
        # Re-adding the same model bumps the version and drops caches.
        fitted_store.add(fitted_store.get(GPT2))
        curve_b = analyzer.gpu_curve(GPT2, 16, max_gpus=4)
        assert curve_a is not curve_b
        assert curve_a.envelope == curve_b.envelope
