"""Synthetic workload generation and trace variants."""

from __future__ import annotations

import pytest

from repro.cluster import PAPER_CLUSTER
from repro.models import LARGE_MODEL_NAMES
from repro.oracle import SyntheticTestbed
from repro.perfmodel import ResourceShape
from repro.scheduler import JobPriority
from repro.sim import (
    WorkloadConfig,
    generate_trace,
    to_best_plan_trace,
    to_multi_tenant_trace,
    with_large_model_share,
)
from repro.sim.workload import MODEL_MIN_GPUS, _feasible_plans

SEED = 19


@pytest.fixture(scope="module")
def testbed():
    return SyntheticTestbed(PAPER_CLUSTER, seed=SEED)


@pytest.fixture(scope="module")
def base_trace(testbed):
    return generate_trace(WorkloadConfig(num_jobs=40, seed=SEED), testbed)


class TestGeneration:
    def test_job_count_and_ordering(self, base_trace):
        assert len(base_trace) == 40
        submits = [j.submit_time for j in base_trace]
        assert submits == sorted(submits)

    def test_deterministic(self, testbed):
        a = generate_trace(WorkloadConfig(num_jobs=15, seed=SEED), testbed)
        b = generate_trace(WorkloadConfig(num_jobs=15, seed=SEED), testbed)
        assert a.jobs == b.jobs

    def test_different_seed_differs(self, testbed):
        a = generate_trace(WorkloadConfig(num_jobs=15, seed=1), testbed)
        b = generate_trace(WorkloadConfig(num_jobs=15, seed=2), testbed)
        assert a.jobs != b.jobs

    def test_every_initial_plan_feasible(self, base_trace, testbed):
        for job in base_trace:
            shape = ResourceShape.packed(
                job.requested_gpus, cpus=job.requested_gpus * 4
            )
            assert testbed.is_feasible(
                job.model, job.initial_plan, shape, job.global_batch
            ), f"{job.job_id} has an infeasible initial plan"

    def test_model_min_gpu_floors(self, base_trace):
        for job in base_trace:
            floor = MODEL_MIN_GPUS.get(job.model_name, 1)
            assert job.requested_gpus >= floor

    def test_durations_within_bounds(self, base_trace):
        cfg = WorkloadConfig()
        for job in base_trace:
            assert cfg.min_duration <= job.duration <= cfg.max_duration

    def test_zero_weight_excludes_model(self, testbed):
        trace = generate_trace(
            WorkloadConfig(
                num_jobs=30, seed=SEED, model_weights={"llama-30b": 0.0}
            ),
            testbed,
        )
        assert all(j.model_name != "llama-30b" for j in trace)


class TestVariants:
    def test_best_plan_trace_improves_throughput(self, base_trace, testbed):
        bp = to_best_plan_trace(base_trace, testbed)
        improved = 0
        for before, after in zip(base_trace, bp):
            shape = ResourceShape.packed(
                before.requested_gpus, cpus=before.requested_gpus * 4
            )
            thr_before = testbed.true_throughput(
                before.model, before.initial_plan, shape, before.global_batch
            )
            thr_after = testbed.true_throughput(
                after.model, after.initial_plan, shape, after.global_batch
            )
            assert thr_after >= thr_before * 0.999
            improved += thr_after > thr_before * 1.01
        assert improved > 0  # some random plans were genuinely bad

    def test_multi_tenant_split(self, base_trace):
        mt = to_multi_tenant_trace(base_trace, seed=SEED)
        tenants = {j.tenant for j in mt}
        assert tenants == {"tenant-a", "tenant-b"}
        for job in mt:
            if job.tenant == "tenant-a":
                assert job.priority == JobPriority.GUARANTEED
            else:
                assert job.priority == JobPriority.BEST_EFFORT

    def test_large_model_share_scales_weights(self, testbed):
        low = generate_trace(
            with_large_model_share(WorkloadConfig(num_jobs=60, seed=SEED), 0.5),
            testbed,
        )
        high = generate_trace(
            with_large_model_share(WorkloadConfig(num_jobs=60, seed=SEED), 3.0),
            testbed,
        )

        def large_count(trace):
            return sum(1 for j in trace if j.model_name in LARGE_MODEL_NAMES)

        assert large_count(high) > large_count(low)

    def test_load_scaling_compresses_arrivals(self, base_trace):
        fast = base_trace.scaled_load(2.0)
        assert fast.span == pytest.approx(base_trace.span / 2.0)
        assert len(fast) == len(base_trace)
        with pytest.raises(ValueError):
            base_trace.scaled_load(0.0)


class TestFeasiblePlanPool:
    def test_small_models_have_dp_family_pool(self, testbed):
        from repro.models import ROBERTA

        plans = _feasible_plans(ROBERTA, 4, testbed)
        assert plans
        assert all(p.tp == 1 and p.pp == 1 for p in plans)

    def test_large_models_include_3d(self, testbed):
        from repro.models import LLAMA2_7B

        plans = _feasible_plans(LLAMA2_7B, 8, testbed)
        assert any(p.tp > 1 or p.pp > 1 for p in plans)
