"""Live cluster allocation bookkeeping."""

from __future__ import annotations

import pytest

from repro.cluster import (
    Cluster,
    ClusterSpec,
    NodeSpec,
    Placement,
    ResourceVector,
)
from repro.errors import PlacementError


@pytest.fixture
def cluster() -> Cluster:
    return Cluster(ClusterSpec(num_nodes=2, node=NodeSpec(num_gpus=4, num_cpus=16)))


class TestNode:
    def test_capacity_and_free(self, cluster):
        node = cluster.node(0)
        assert node.capacity.gpus == 4
        assert node.free == node.capacity

    def test_allocate_reduces_free(self, cluster):
        node = cluster.node(0)
        node.allocate("a", ResourceVector(gpus=2, cpus=4))
        assert node.free.gpus == 2
        assert node.free.cpus == 12

    def test_allocate_extends_existing(self, cluster):
        node = cluster.node(0)
        node.allocate("a", ResourceVector(gpus=1))
        node.allocate("a", ResourceVector(gpus=2))
        assert node.allocations["a"].gpus == 3

    def test_over_capacity_raises(self, cluster):
        node = cluster.node(0)
        with pytest.raises(PlacementError):
            node.allocate("a", ResourceVector(gpus=5))

    def test_set_allocation_replaces(self, cluster):
        node = cluster.node(0)
        node.allocate("a", ResourceVector(gpus=3))
        node.set_allocation("a", ResourceVector(gpus=1))
        assert node.allocations["a"].gpus == 1

    def test_set_allocation_rolls_back_on_overflow(self, cluster):
        node = cluster.node(0)
        node.allocate("a", ResourceVector(gpus=3))
        with pytest.raises(PlacementError):
            node.set_allocation("a", ResourceVector(gpus=9))
        assert node.allocations["a"].gpus == 3

    def test_release_returns_share(self, cluster):
        node = cluster.node(0)
        node.allocate("a", ResourceVector(gpus=2))
        released = node.release("a")
        assert released.gpus == 2
        assert node.free.gpus == 4
        assert node.release("missing").is_zero


class TestCluster:
    def test_totals(self, cluster):
        assert cluster.total.gpus == 8
        assert cluster.free.gpus == 8

    def test_apply_and_placement_of(self, cluster):
        placement = Placement(
            {0: ResourceVector(gpus=2, cpus=2), 1: ResourceVector(gpus=1, cpus=1)}
        )
        cluster.apply("job", placement)
        assert cluster.placement_of("job").total.gpus == 3
        assert cluster.free.gpus == 5
        assert cluster.all_job_ids() == {"job"}

    def test_apply_replaces_previous(self, cluster):
        cluster.apply("job", Placement({0: ResourceVector(gpus=4, cpus=4)}))
        cluster.apply("job", Placement({1: ResourceVector(gpus=1, cpus=1)}))
        assert cluster.placement_of("job").node_ids() == [1]
        assert cluster.free.gpus == 7

    def test_apply_rolls_back_on_overflow(self, cluster):
        cluster.apply("a", Placement({0: ResourceVector(gpus=4, cpus=4)}))
        before = cluster.placement_of("a")
        with pytest.raises(PlacementError):
            cluster.apply(
                "b",
                Placement({0: ResourceVector(gpus=1, cpus=1)})
                .with_share(0, ResourceVector(gpus=5, cpus=1)),
            )
        # "a" untouched, "b" absent.
        assert cluster.placement_of("a").shares == before.shares
        assert cluster.placement_of("b").is_empty

    def test_gpu_utilization(self, cluster):
        assert cluster.gpu_utilization() == 0.0
        cluster.apply("a", Placement({0: ResourceVector(gpus=4)}))
        assert cluster.gpu_utilization() == pytest.approx(0.5)

    def test_jobs_on(self, cluster):
        cluster.apply("a", Placement({0: ResourceVector(gpus=1)}))
        cluster.apply("b", Placement({0: ResourceVector(gpus=1)}))
        assert cluster.jobs_on(0) == ["a", "b"]
        assert cluster.jobs_on(1) == []

    def test_release_idempotent(self, cluster):
        cluster.apply("a", Placement({0: ResourceVector(gpus=1)}))
        cluster.release("a")
        cluster.release("a")
        assert cluster.free.gpus == 8
