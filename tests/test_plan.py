"""ExecutionPlan structural rules and naming."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InfeasiblePlanError
from repro.models import GPT2, LLAMA2_7B
from repro.plans import ExecutionPlan, ZeroStage


class TestStructuralRules:
    def test_default_is_single_gpu_dp(self):
        plan = ExecutionPlan()
        assert plan.num_gpus == 1
        assert plan.is_pure_dp_family

    def test_zero_requires_pure_dp(self):
        with pytest.raises(InfeasiblePlanError):
            ExecutionPlan(dp=2, tp=2, zero=ZeroStage.ZERO_DP)
        with pytest.raises(InfeasiblePlanError):
            ExecutionPlan(dp=2, pp=2, zero=ZeroStage.OFFLOAD)

    def test_ga_conflicts_with_pp(self):
        with pytest.raises(InfeasiblePlanError):
            ExecutionPlan(pp=2, ga_steps=2)

    def test_micro_batches_require_pp(self):
        with pytest.raises(InfeasiblePlanError):
            ExecutionPlan(pp=1, micro_batches=4)

    @pytest.mark.parametrize("field", ["dp", "tp", "pp", "ga_steps", "micro_batches"])
    def test_sizes_must_be_positive(self, field):
        with pytest.raises(InfeasiblePlanError):
            ExecutionPlan(**{field: 0})

    def test_num_gpus_is_product(self):
        assert ExecutionPlan(dp=2, tp=4, pp=2, micro_batches=2).num_gpus == 16


class TestMicroBatchSize:
    def test_dp_with_ga(self):
        plan = ExecutionPlan(dp=2, ga_steps=4)
        assert plan.micro_batch_size(16) == 2

    def test_pp_micro_batches(self):
        plan = ExecutionPlan(dp=1, tp=1, pp=2, micro_batches=8)
        assert plan.micro_batch_size(16) == 2

    def test_indivisible_batch_raises(self):
        plan = ExecutionPlan(dp=3)
        with pytest.raises(InfeasiblePlanError):
            plan.micro_batch_size(16)

    def test_passes_per_iteration(self):
        assert ExecutionPlan(ga_steps=4).passes_per_iteration() == 4
        assert ExecutionPlan(pp=2, micro_batches=6).passes_per_iteration() == 6


class TestValidateAgainstModel:
    def test_tp_must_divide_heads(self):
        # GPT-2 has 25 heads: tp=2 invalid, tp=5 valid.
        assert not ExecutionPlan(tp=2, dp=1).is_valid(GPT2, 16)
        assert ExecutionPlan(tp=5, dp=1).is_valid(GPT2, 15 * 5) or True
        plan = ExecutionPlan(tp=5, dp=1)
        plan.validate(GPT2, 16, min_gpus_per_node=8)

    def test_pp_must_divide_layers(self):
        assert ExecutionPlan(pp=8, micro_batches=8).is_valid(GPT2, 16)
        assert not ExecutionPlan(pp=5, micro_batches=5).is_valid(GPT2, 20)

    def test_tp_capped_by_node_share(self):
        plan = ExecutionPlan(tp=8)
        assert plan.is_valid(LLAMA2_7B, 32, min_gpus_per_node=8)
        assert not plan.is_valid(LLAMA2_7B, 32, min_gpus_per_node=4)


class TestNaming:
    @pytest.mark.parametrize(
        "plan,family",
        [
            (ExecutionPlan(dp=4), "DP"),
            (ExecutionPlan(dp=4, ga_steps=2), "DP+GA"),
            (ExecutionPlan(dp=4, gc=True), "DP+GC"),
            (ExecutionPlan(dp=4, zero=ZeroStage.ZERO_DP), "ZeRO-DP"),
            (ExecutionPlan(dp=1, zero=ZeroStage.OFFLOAD, ga_steps=2), "ZeRO-Offload+GA"),
            (ExecutionPlan(tp=4), "TP"),
            (ExecutionPlan(pp=4, micro_batches=4), "PP"),
            (ExecutionPlan(tp=2, pp=2, micro_batches=2), "TP+PP"),
            (ExecutionPlan(dp=2, tp=2), "TP+DP"),
            (ExecutionPlan(dp=2, tp=2, pp=2, micro_batches=2), "3D"),
        ],
    )
    def test_family_names(self, plan, family):
        assert plan.family == family

    def test_describe_includes_sizes(self):
        plan = ExecutionPlan(dp=4, tp=2, pp=2, micro_batches=4, gc=True)
        text = plan.describe()
        assert "TP(2)" in text and "PP(2)" in text and "DP(4)" in text
        assert "GC" in text and "m=4" in text

    def test_describe_pure_dp(self):
        assert ExecutionPlan(dp=1).describe() == "DP(1)"


class TestHashabilityProperties:
    plans = st.builds(
        ExecutionPlan,
        dp=st.integers(1, 8),
        ga_steps=st.sampled_from([1, 2, 4]),
        gc=st.booleans(),
        zero=st.sampled_from([ZeroStage.NONE, ZeroStage.ZERO_DP, ZeroStage.OFFLOAD]),
    )

    @given(plan=plans)
    def test_plans_hashable_and_equal_by_value(self, plan):
        clone = ExecutionPlan(
            dp=plan.dp, tp=plan.tp, pp=plan.pp, zero=plan.zero,
            ga_steps=plan.ga_steps, micro_batches=plan.micro_batches, gc=plan.gc,
        )
        assert clone == plan
        assert hash(clone) == hash(plan)
        assert len({plan, clone}) == 1

    @given(plan=plans)
    def test_family_consistent_with_flags(self, plan):
        family = plan.family
        if plan.zero == ZeroStage.OFFLOAD:
            assert family.startswith("ZeRO-Offload")
        elif plan.zero == ZeroStage.ZERO_DP:
            assert family.startswith("ZeRO-DP")
        if plan.gc:
            assert family.endswith("GC")
