"""Sensitivity curves, best-plan lookup, and minimum-resource search."""

from __future__ import annotations

import pytest

from repro.cluster import PAPER_CLUSTER, ResourceVector
from repro.models import GPT2, ROBERTA
from repro.perfmodel import ResourceShape
from repro.plans import ExecutionPlan
from repro.scheduler import (
    Job,
    JobSpec,
    SensitivityAnalyzer,
    default_plan_space,
)


@pytest.fixture(scope="module")
def analyzer(fitted_store) -> SensitivityAnalyzer:
    return SensitivityAnalyzer(fitted_store, PAPER_CLUSTER)


def _job(model=GPT2, gpus=8, plan=None) -> Job:
    plan = plan or ExecutionPlan(dp=gpus, ga_steps=2 if gpus == 8 else 1)
    spec = JobSpec(
        job_id="t", model=model, global_batch=model.global_batch_size,
        requested=ResourceVector(gpus, gpus * 4, 0.0),
        initial_plan=plan, total_samples=1e5, submit_time=0.0,
    )
    return Job(spec=spec)


class TestBestForShape:
    def test_returns_plan_matching_gpus(self, analyzer):
        best = analyzer.best_for_shape(GPT2, 16, ResourceShape.packed(8, cpus=32))
        assert best is not None
        assert best.plan.num_gpus == 8
        assert best.throughput > 0

    def test_zero_gpus_none(self, analyzer):
        assert analyzer.best_for_shape(GPT2, 16, ResourceShape.packed(0)) is None

    def test_cached_and_deterministic(self, analyzer):
        shape = ResourceShape.packed(4, cpus=16)
        a = analyzer.best_for_shape(GPT2, 16, shape)
        b = analyzer.best_for_shape(GPT2, 16, shape)
        assert a is b  # same cache entry

    def test_small_model_space_restricted(self, analyzer):
        space = default_plan_space(ROBERTA)
        best = analyzer.best_for_shape(
            ROBERTA, 64, ResourceShape.packed(8, cpus=32), space=space
        )
        assert best is not None
        assert best.plan.tp == 1 and best.plan.pp == 1


class TestGpuCurve:
    def test_envelope_monotone(self, analyzer):
        curve = analyzer.gpu_curve(GPT2, 16, max_gpus=16)
        env = curve.envelope
        assert env[0] == 0.0
        assert all(b >= a for a, b in zip(env, env[1:]))

    def test_slopes_consistent_with_envelope(self, analyzer):
        curve = analyzer.gpu_curve(GPT2, 16, max_gpus=16)
        for g in range(0, 15):
            assert curve.slope_up(g) == pytest.approx(
                curve.envelope[g + 1] - curve.envelope[g]
            )
        assert curve.slope_down(0) == 0.0

    def test_lookahead_crosses_plateaus(self, analyzer):
        curve = analyzer.gpu_curve(GPT2, 16, max_gpus=16)
        # Wherever the unit slope is zero before the curve tops out, the
        # lookahead must still see the next rise.
        top = max(range(17), key=lambda g: curve.envelope[g])
        for g in range(top):
            if curve.slope_up(g) == 0.0:
                assert curve.lookahead_slope_up(g) > 0.0

    def test_next_better_count_none_at_top(self, analyzer):
        curve = analyzer.gpu_curve(GPT2, 16, max_gpus=16)
        assert curve.next_better_count(16) is None

    def test_out_of_range_clamped(self, analyzer):
        curve = analyzer.gpu_curve(GPT2, 16, max_gpus=8)
        assert curve.throughput_at(99) == curve.throughput_at(8)
        assert curve.throughput_at(-1) == 0.0


class TestMinRes:
    def test_min_res_never_exceeds_request(self, analyzer):
        job = _job(gpus=8)
        found = analyzer.find_min_res(job)
        assert found is not None
        min_res, plan = found
        assert min_res.gpus <= 8
        assert min_res.cpus <= 32
        assert plan.num_gpus == min_res.gpus

    def test_min_res_matches_baseline_performance(self, analyzer, fitted_store):
        job = _job(gpus=8)
        found = analyzer.find_min_res(job)
        assert found is not None
        min_res, plan = found
        perf = fitted_store.get(GPT2)
        baseline = perf.throughput(
            job.spec.initial_plan, ResourceShape.packed(8, cpus=32), 16
        )
        achieved = perf.throughput(
            plan, ResourceShape.packed(min_res.gpus, cpus=min_res.cpus), 16
        )
        assert achieved >= baseline * 0.999

    def test_bad_initial_plan_shrinks_demand(self, analyzer):
        # A deliberately poor initial plan (offload on 8 GPUs) should be
        # matchable with far fewer GPUs under a better plan.
        from repro.plans import ZeroStage

        bad = ExecutionPlan(dp=8, zero=ZeroStage.OFFLOAD, ga_steps=2)
        job = _job(gpus=8, plan=bad)
        found = analyzer.find_min_res(job)
        assert found is not None
        assert found[0].gpus < 8


class TestCpuSlopes:
    def test_non_offload_best_has_zero_cpu_slope(self, analyzer):
        shape = ResourceShape.packed(8, cpus=32)
        best = analyzer.best_for_shape(GPT2, 16, shape)
        if not best.plan.uses_offload:
            assert analyzer.cpu_slope(GPT2, 16, shape) == pytest.approx(
                0.0, abs=1e-6
            )

    def test_cpu_slope_down_guards_floor(self, analyzer):
        shape = ResourceShape.packed(4, cpus=4)  # at the 1-CPU/GPU floor
        assert analyzer.cpu_slope_down(GPT2, 16, shape) == float("inf")
