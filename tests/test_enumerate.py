"""Plan enumeration: coverage, restrictions, memory filtering."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import PAPER_CLUSTER
from repro.models import GPT2, LLAMA2_7B, ROBERTA, VIT
from repro.plans import (
    DP_FAMILY_SPACE,
    PlanSpace,
    ZeroStage,
    enumerate_plans,
    estimate_memory,
    feasible_gpu_counts,
)

BUDGET = PAPER_CLUSTER.node.usable_gpu_mem


class TestBasicEnumeration:
    def test_zero_gpus_yields_nothing(self):
        assert enumerate_plans(GPT2, 16, 0) == []

    def test_single_gpu_has_dp_family(self):
        plans = enumerate_plans(GPT2, 16, 1, min_gpus_per_node=1)
        families = {p.family for p in plans}
        assert "DP+GA" in families
        assert any(p.uses_offload for p in plans)

    def test_all_plans_use_exactly_the_gpus(self):
        for g in (1, 2, 4, 8):
            for plan in enumerate_plans(GPT2, 16, g, min_gpus_per_node=8):
                assert plan.num_gpus == g

    def test_no_duplicates(self):
        plans = enumerate_plans(LLAMA2_7B, 32, 8, min_gpus_per_node=8)
        assert len(plans) == len(set(plans))

    def test_batch_divisibility_respected(self):
        for plan in enumerate_plans(GPT2, 16, 8, min_gpus_per_node=8):
            assert 16 % plan.dp == 0
            plan.micro_batch_size(16)  # must not raise


class TestSpaceRestrictions:
    def test_dp_family_space_excludes_model_parallel(self):
        plans = enumerate_plans(
            LLAMA2_7B, 32, 8, min_gpus_per_node=8, space=DP_FAMILY_SPACE
        )
        assert all(p.tp == 1 and p.pp == 1 for p in plans)

    def test_no_zero_space(self):
        space = PlanSpace(allow_zero=False, allow_offload=False)
        plans = enumerate_plans(GPT2, 16, 4, min_gpus_per_node=8, space=space)
        assert all(p.zero == ZeroStage.NONE for p in plans)

    def test_no_ga_space(self):
        space = PlanSpace(allow_ga=False)
        plans = enumerate_plans(GPT2, 16, 4, min_gpus_per_node=8, space=space)
        assert all(p.ga_steps == 1 for p in plans)

    def test_no_gc_space(self):
        space = PlanSpace(allow_gc=False)
        plans = enumerate_plans(GPT2, 16, 4, min_gpus_per_node=8, space=space)
        assert all(not p.gc for p in plans)

    def test_tp_capped_by_node_share(self):
        multi = enumerate_plans(LLAMA2_7B, 32, 16, min_gpus_per_node=8)
        assert any(p.tp == 8 for p in multi)
        narrow = enumerate_plans(LLAMA2_7B, 32, 16, min_gpus_per_node=4)
        assert all(p.tp <= 4 for p in narrow)


class TestMemoryFilter:
    def test_budget_filters_oom_plans(self):
        unfiltered = enumerate_plans(LLAMA2_7B, 32, 1, min_gpus_per_node=1)
        filtered = enumerate_plans(
            LLAMA2_7B, 32, 1, min_gpus_per_node=1, gpu_mem_budget=BUDGET
        )
        assert len(filtered) < len(unfiltered)
        assert all(
            estimate_memory(LLAMA2_7B, p, 32).gpu_total <= BUDGET
            for p in filtered
        )

    def test_llama7b_one_gpu_only_offload_survives(self):
        # The paper's Fig. 7 crossover: at 1 GPU only ZeRO-Offload launches.
        plans = enumerate_plans(
            LLAMA2_7B, 32, 1, min_gpus_per_node=1, gpu_mem_budget=BUDGET
        )
        assert plans
        assert all(p.uses_offload for p in plans)


class TestFeasibleGpuCounts:
    def test_vit_feasible_everywhere_small(self):
        counts = feasible_gpu_counts(VIT, 256, 8, gpu_mem_budget=BUDGET)
        assert counts == [1, 2, 4, 8] or set(counts) >= {1, 2, 4, 8}

    def test_counts_sorted_unique(self):
        counts = feasible_gpu_counts(GPT2, 16, 16, gpu_mem_budget=BUDGET)
        assert counts == sorted(set(counts))

    def test_batch_limits_dp_sizes(self):
        # RoBERTa batch 64: dp sizes must divide 64, so 7 GPUs only works
        # with some (d, t, p) split — for a DP-only model 7 is infeasible.
        counts = feasible_gpu_counts(
            ROBERTA, 64, 8, gpu_mem_budget=BUDGET, space=DP_FAMILY_SPACE
        )
        assert 7 not in counts
        assert {1, 2, 4, 8} <= set(counts)


class TestEnumerationProperties:
    @settings(max_examples=20, deadline=None)
    @given(gpus=st.integers(1, 8))
    def test_every_plan_validates(self, gpus):
        for plan in enumerate_plans(GPT2, 16, gpus, min_gpus_per_node=8):
            plan.validate(GPT2, 16, min_gpus_per_node=8)

    @settings(max_examples=10, deadline=None)
    @given(gpus=st.sampled_from([1, 2, 4, 8, 16]))
    def test_enumeration_deterministic(self, gpus):
        a = enumerate_plans(LLAMA2_7B, 32, gpus, min_gpus_per_node=8)
        b = enumerate_plans(LLAMA2_7B, 32, gpus, min_gpus_per_node=8)
        assert a == b
