"""Metrics aggregation and ASCII reporting helpers."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    NO_DATA,
    format_series,
    format_table,
    normalize_to_first,
    ratio,
    span_cell,
)
from repro.scheduler import JobPriority
from repro.sim.metrics import JobRecord, SimulationResult
from repro.units import HOUR


def _record(job_id="j", jct=HOUR, priority=JobPriority.GUARANTEED,
            tenant="default", sla=1.0, model="gpt2-1.5b", reconfigs=1,
            held_gpus=8, restarts=0, lost_gpu_seconds=0.0):
    return JobRecord(
        job_id=job_id, model_name=model, priority=priority, tenant=tenant,
        submit_time=0.0, first_start=60.0, finish_time=jct, jct=jct,
        queue_seconds=60.0, run_seconds=jct - 60.0, reconfig_count=reconfigs,
        reconfig_seconds=78.0 * reconfigs, gpu_seconds=8 * jct,
        requested_gpus=8, sla_ratio=sla,
        reconfig_gpu_seconds=held_gpus * 78.0 * reconfigs,
        restart_count=restarts, lost_gpu_seconds=lost_gpu_seconds,
    )


class TestSimulationResult:
    def test_jct_statistics(self):
        res = SimulationResult(policy_name="p", trace_name="t")
        res.records = [_record(jct=h * HOUR) for h in (1, 2, 3)]
        assert res.avg_jct_hours() == pytest.approx(2.0)
        assert res.p99_jct_hours() == pytest.approx(3.0, rel=0.01)

    def test_empty_result_is_nan_not_zero(self):
        """Regression: an empty record set must not read as instant JCT."""
        res = SimulationResult(policy_name="p", trace_name="t")
        assert math.isnan(res.avg_jct())
        assert math.isnan(res.p99_jct())
        assert res.avg_reconfig_count == 0.0
        assert res.reconfig_gpu_hour_fraction == 0.0

    def test_empty_subset_is_nan_not_zero(self):
        """`by_tenant` of a tenant with no completions: NaN, not 0.0 h."""
        res = SimulationResult(policy_name="p", trace_name="t")
        res.records = [_record("a", tenant="x")]
        ghost = res.by_tenant("ghost")
        assert ghost == []
        assert math.isnan(res.avg_jct(ghost))
        assert math.isnan(res.p99_jct_hours(ghost))
        # Non-empty subsets are unaffected.
        assert res.avg_jct_hours(res.by_tenant("x")) == pytest.approx(1.0)
        assert math.isnan(res.avg_jct_hours(res.by_model("no-such-model")))

    def test_priority_and_tenant_slices(self):
        res = SimulationResult(policy_name="p", trace_name="t")
        res.records = [
            _record("a", priority=JobPriority.GUARANTEED, tenant="x"),
            _record("b", priority=JobPriority.BEST_EFFORT, tenant="y"),
        ]
        assert [r.job_id for r in res.by_priority(JobPriority.GUARANTEED)] == ["a"]
        assert [r.job_id for r in res.by_tenant("y")] == ["b"]
        assert [r.job_id for r in res.by_model("gpt2-1.5b")] == ["a", "b"]

    def test_sla_violations(self):
        res = SimulationResult(policy_name="p", trace_name="t")
        res.records = [
            _record("ok", sla=1.1),
            _record("bad", sla=0.5),
            _record("be", sla=0.1, priority=JobPriority.BEST_EFFORT),
        ]
        # Only guaranteed jobs count.
        assert [r.job_id for r in res.sla_violations()] == ["bad"]

    def test_never_ran_job_is_not_a_violation(self):
        """Regression: a guaranteed job whose guarantee was never exercised
        (NaN ratio — it never ran, or its baseline had no throughput) must
        not be counted as an SLA violation."""
        res = SimulationResult(policy_name="p", trace_name="t")
        res.records = [
            _record("never-ran", sla=float("nan")),
            _record("slow", sla=0.2),
        ]
        assert [r.job_id for r in res.sla_violations()] == ["slow"]

    def test_from_job_never_ran_sla_is_nan(self):
        from repro.cluster import ResourceVector
        from repro.plans import ExecutionPlan
        from repro.scheduler import JobSpec
        from repro.scheduler.job import Job
        from repro.models import GPT2

        spec = JobSpec(
            job_id="cutoff", model=GPT2, global_batch=GPT2.global_batch_size,
            requested=ResourceVector(gpus=2, cpus=8),
            initial_plan=ExecutionPlan(dp=2, ga_steps=8),
            total_samples=1e5, submit_time=0.0,
        )
        job = Job(spec=spec)
        job.finish_time = 100.0  # makespan cutoff: finished without running
        job.baseline_throughput = 5.0
        record = JobRecord.from_job(job, gpu_seconds=0.0)
        assert math.isnan(record.sla_ratio)
        # And a ran job with a zero baseline is "not evaluated" too.
        job.run_seconds = 50.0
        job.baseline_throughput = 0.0
        assert math.isnan(JobRecord.from_job(job, 0.0).sla_ratio)

    def test_dynamics_accounting_identity(self):
        res = SimulationResult(policy_name="p", trace_name="t")
        res.records = [
            _record("a", restarts=1, lost_gpu_seconds=2 * HOUR),
            _record("b"),
        ]
        assert res.lost_gpu_hours == pytest.approx(2.0)
        assert res.total_restarts == 1
        assert res.goodput_gpu_hours + res.lost_gpu_hours == pytest.approx(
            res.total_gpu_hours
        )

    def test_summary_dynamics_keys_only_on_dynamic_runs(self):
        res = SimulationResult(policy_name="p", trace_name="t")
        res.records = [_record()]
        assert "evictions" not in res.summary()
        res.cluster_events = 3
        res.evictions = 2
        summary = res.summary()
        assert summary["cluster_events"] == 3.0
        assert summary["evictions"] == 2.0
        assert "goodput_gpu_h" in summary and "lost_gpu_h" in summary

    def test_reconfig_overhead_fraction(self):
        res = SimulationResult(policy_name="p", trace_name="t")
        res.records = [_record(jct=10 * HOUR, reconfigs=2)]
        frac = res.reconfig_gpu_hour_fraction
        assert 0 < frac < 0.01

    def test_reconfig_overhead_uses_held_not_requested_gpus(self):
        """Regression: a job that paused while holding 2 GPUs must be
        weighted by those 2 — not by its 8-GPU request."""
        res = SimulationResult(policy_name="p", trace_name="t")
        res.records = [_record(jct=10 * HOUR, reconfigs=1, held_gpus=2)]
        held_based = (2 * 78.0 / HOUR) / res.total_gpu_hours
        request_based = (8 * 78.0 / HOUR) / res.total_gpu_hours
        assert res.reconfig_gpu_hour_fraction == pytest.approx(held_based)
        assert res.reconfig_gpu_hour_fraction != pytest.approx(request_based)

    def test_summary_keys(self):
        res = SimulationResult(policy_name="p", trace_name="t")
        res.records = [_record()]
        summary = res.summary()
        assert set(summary) >= {"jobs", "avg_jct_h", "p99_jct_h", "makespan_h"}


class TestFormatting:
    def test_table_alignment(self):
        text = format_table(["a", "bb"], [("x", 1.0), ("yyy", 22.5)])
        lines = text.splitlines()
        assert len({len(l) for l in lines}) == 1  # rectangular
        assert "yyy" in text

    def test_table_title(self):
        text = format_table(["a"], [("x",)], title="T")
        assert text.startswith("T\n")

    def test_ratio(self):
        assert ratio(2.0, 1.0) == "(2.00x)"
        assert ratio(1.0, 0.0) == "(n/a)"

    def test_series_bars_scale(self):
        text = format_series([1, 2], [1.0, 2.0], label="L", width=10)
        lines = text.splitlines()
        assert lines[0] == "L"
        assert lines[2].count("#") == 10
        assert lines[1].count("#") == 5

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series([1], [1.0, 2.0])

    def test_normalize_to_first(self):
        assert normalize_to_first([2.0, 4.0]) == [1.0, 2.0]
        assert normalize_to_first([]) == []
        assert normalize_to_first([0.0, 1.0]) == [0.0, 0.0]

    def test_nan_renders_as_no_data(self):
        """NaN statistics (empty subsets) render as — in every table form."""
        nan = float("nan")
        assert span_cell(nan, nan, nan) == NO_DATA
        text = format_table(["x"], [(nan,), (1.5,)])
        assert NO_DATA in text and "1.50" in text
        assert "nan" not in text
