"""Metrics aggregation and ASCII reporting helpers."""

from __future__ import annotations

import pytest

from repro.analysis import format_series, format_table, normalize_to_first, ratio
from repro.scheduler import JobPriority
from repro.sim.metrics import JobRecord, SimulationResult
from repro.units import HOUR


def _record(job_id="j", jct=HOUR, priority=JobPriority.GUARANTEED,
            tenant="default", sla=1.0, model="gpt2-1.5b", reconfigs=1,
            held_gpus=8):
    return JobRecord(
        job_id=job_id, model_name=model, priority=priority, tenant=tenant,
        submit_time=0.0, first_start=60.0, finish_time=jct, jct=jct,
        queue_seconds=60.0, run_seconds=jct - 60.0, reconfig_count=reconfigs,
        reconfig_seconds=78.0 * reconfigs, gpu_seconds=8 * jct,
        requested_gpus=8, sla_ratio=sla,
        reconfig_gpu_seconds=held_gpus * 78.0 * reconfigs,
    )


class TestSimulationResult:
    def test_jct_statistics(self):
        res = SimulationResult(policy_name="p", trace_name="t")
        res.records = [_record(jct=h * HOUR) for h in (1, 2, 3)]
        assert res.avg_jct_hours() == pytest.approx(2.0)
        assert res.p99_jct_hours() == pytest.approx(3.0, rel=0.01)

    def test_empty_result_safe(self):
        res = SimulationResult(policy_name="p", trace_name="t")
        assert res.avg_jct() == 0.0
        assert res.avg_reconfig_count == 0.0
        assert res.reconfig_gpu_hour_fraction == 0.0

    def test_priority_and_tenant_slices(self):
        res = SimulationResult(policy_name="p", trace_name="t")
        res.records = [
            _record("a", priority=JobPriority.GUARANTEED, tenant="x"),
            _record("b", priority=JobPriority.BEST_EFFORT, tenant="y"),
        ]
        assert [r.job_id for r in res.by_priority(JobPriority.GUARANTEED)] == ["a"]
        assert [r.job_id for r in res.by_tenant("y")] == ["b"]
        assert [r.job_id for r in res.by_model("gpt2-1.5b")] == ["a", "b"]

    def test_sla_violations(self):
        res = SimulationResult(policy_name="p", trace_name="t")
        res.records = [
            _record("ok", sla=1.1),
            _record("bad", sla=0.5),
            _record("be", sla=0.1, priority=JobPriority.BEST_EFFORT),
        ]
        # Only guaranteed jobs count.
        assert [r.job_id for r in res.sla_violations()] == ["bad"]

    def test_reconfig_overhead_fraction(self):
        res = SimulationResult(policy_name="p", trace_name="t")
        res.records = [_record(jct=10 * HOUR, reconfigs=2)]
        frac = res.reconfig_gpu_hour_fraction
        assert 0 < frac < 0.01

    def test_reconfig_overhead_uses_held_not_requested_gpus(self):
        """Regression: a job that paused while holding 2 GPUs must be
        weighted by those 2 — not by its 8-GPU request."""
        res = SimulationResult(policy_name="p", trace_name="t")
        res.records = [_record(jct=10 * HOUR, reconfigs=1, held_gpus=2)]
        held_based = (2 * 78.0 / HOUR) / res.total_gpu_hours
        request_based = (8 * 78.0 / HOUR) / res.total_gpu_hours
        assert res.reconfig_gpu_hour_fraction == pytest.approx(held_based)
        assert res.reconfig_gpu_hour_fraction != pytest.approx(request_based)

    def test_summary_keys(self):
        res = SimulationResult(policy_name="p", trace_name="t")
        res.records = [_record()]
        summary = res.summary()
        assert set(summary) >= {"jobs", "avg_jct_h", "p99_jct_h", "makespan_h"}


class TestFormatting:
    def test_table_alignment(self):
        text = format_table(["a", "bb"], [("x", 1.0), ("yyy", 22.5)])
        lines = text.splitlines()
        assert len({len(l) for l in lines}) == 1  # rectangular
        assert "yyy" in text

    def test_table_title(self):
        text = format_table(["a"], [("x",)], title="T")
        assert text.startswith("T\n")

    def test_ratio(self):
        assert ratio(2.0, 1.0) == "(2.00x)"
        assert ratio(1.0, 0.0) == "(n/a)"

    def test_series_bars_scale(self):
        text = format_series([1, 2], [1.0, 2.0], label="L", width=10)
        lines = text.splitlines()
        assert lines[0] == "L"
        assert lines[2].count("#") == 10
        assert lines[1].count("#") == 5

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series([1], [1.0, 2.0])

    def test_normalize_to_first(self):
        assert normalize_to_first([2.0, 4.0]) == [1.0, 2.0]
        assert normalize_to_first([]) == []
        assert normalize_to_first([0.0, 1.0]) == [0.0, 0.0]
