#!/usr/bin/env python3
"""Plan explorer: enumerate feasible execution plans and memory footprints.

For a chosen model and GPU count, list every structurally valid plan, its
estimated per-GPU memory breakdown, whether it fits an A800, and the
testbed's throughput — the raw material behind Rubick's plan decisions.

Run:  python examples/plan_explorer.py [model] [gpus]
      python examples/plan_explorer.py llama2-7b 8
"""

from __future__ import annotations

import sys

from repro import PAPER_CLUSTER, ResourceShape, SyntheticTestbed, get_model
from repro.analysis import format_table
from repro.plans import enumerate_plans, estimate_memory
from repro.units import GiB


def main(model_name: str = "llama2-7b", gpus: int = 8) -> None:
    model = get_model(model_name)
    batch = model.global_batch_size
    testbed = SyntheticTestbed(PAPER_CLUSTER, seed=42)
    budget = PAPER_CLUSTER.node.usable_gpu_mem
    shape = ResourceShape.packed(gpus, cpus=gpus * 4)

    plans = enumerate_plans(
        model, batch, gpus, min_gpus_per_node=shape.min_gpus_per_node
    )
    rows = []
    for plan in plans:
        est = estimate_memory(model, plan, batch)
        fits = est.gpu_total <= budget
        thr = "-"
        if fits and testbed.is_feasible(model, plan, shape, batch):
            thr = f"{testbed.true_throughput(model, plan, shape, batch):.1f}"
        rows.append(
            (
                plan.describe(),
                f"{est.weights / GiB:.1f}",
                f"{est.optimizer / GiB:.1f}",
                f"{est.activations / GiB:.1f}",
                f"{est.gpu_total / GiB:.1f}",
                "yes" if fits else "OOM",
                thr,
            )
        )
    rows.sort(key=lambda r: (r[5] != "yes", -float(r[6]) if r[6] != "-" else 0))
    print(
        format_table(
            ["plan", "weights GiB", "optim GiB", "acts GiB",
             "total GiB/GPU", "fits A800?", "thr ex/s"],
            rows,
            title=f"{model.display_name} on {gpus} GPUs "
            f"(global batch {batch}, 80 GB A800)",
        )
    )


if __name__ == "__main__":
    name = sys.argv[1] if len(sys.argv) > 1 else "llama2-7b"
    gpus = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    main(name, gpus)
