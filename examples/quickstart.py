#!/usr/bin/env python3
"""Quickstart: profile a model, fit Rubick's performance model, predict plans.

Walks the paper's phase ① for GPT-2: collect 7+ profiled samples on the
synthetic testbed, fit the seven parameters, then predict throughput for
several execution plans and print the GPU sensitivity curve (Fig. 6).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    GPT2,
    PAPER_CLUSTER,
    PerfModelStore,
    ResourceShape,
    SensitivityAnalyzer,
    SyntheticTestbed,
    build_perf_model,
)
from repro.analysis import format_table
from repro.plans import ExecutionPlan, ZeroStage


def main() -> None:
    testbed = SyntheticTestbed(PAPER_CLUSTER, seed=42)
    batch = GPT2.global_batch_size

    print(f"Profiling {GPT2.display_name} (global batch {batch}) ...")
    perf, report = build_perf_model(testbed, GPT2, batch, seed=42)
    print(
        f"  fitted on {report.num_samples} samples "
        f"({report.num_offload_samples} ZeRO-Offload), "
        f"RMSLE {report.rmsle:.3f}, avg in-sample error {report.avg_error:.1%}"
    )

    plans = [
        ExecutionPlan(dp=8, ga_steps=2),
        ExecutionPlan(dp=8, zero=ZeroStage.ZERO_DP, ga_steps=2),
        ExecutionPlan(dp=8, gc=True, ga_steps=2),
        ExecutionPlan(dp=4, zero=ZeroStage.OFFLOAD, ga_steps=4),
        ExecutionPlan(dp=1, pp=8, micro_batches=16),
    ]
    rows = []
    for plan in plans:
        shape = ResourceShape.packed(plan.num_gpus, cpus=32)
        pred = perf.throughput(plan, shape, batch)
        true = testbed.true_throughput(GPT2, plan, shape, batch)
        rows.append(
            (plan.describe(), plan.num_gpus, f"{pred:.1f}", f"{true:.1f}",
             f"{abs(pred - true) / true:.1%}")
        )
    print()
    print(
        format_table(
            ["plan", "GPUs", "predicted ex/s", "true ex/s", "error"],
            rows,
            title="Predicted vs ground-truth throughput",
        )
    )

    store = PerfModelStore()
    store.add(perf)
    analyzer = SensitivityAnalyzer(store, PAPER_CLUSTER)
    curve = analyzer.gpu_curve(GPT2, batch, max_gpus=8)
    print("\nGPU sensitivity curve (best plan per GPU count):")
    for gpus in range(1, 9):
        cfg = curve.config_at(gpus)
        desc = cfg.plan.describe() if cfg else "-"
        print(f"  {gpus} GPUs: {curve.throughput_at(gpus):7.1f} ex/s  via {desc}")


if __name__ == "__main__":
    main()
