#!/usr/bin/env python3
"""Cluster scheduling: replay a synthetic Philly-like trace under three policies.

Generates a 60-job trace for the paper's 64-GPU cluster and compares Rubick
against Synergy (fixed GPUs, CPU tuning) and Sia (DP-scaling goodput).

Run:  python examples/cluster_scheduling.py
"""

from __future__ import annotations

from repro import (
    PAPER_CLUSTER,
    Simulator,
    SyntheticTestbed,
    WorkloadConfig,
    generate_trace,
    rubick,
)
from repro.analysis import format_table
from repro.scheduler.baselines import SiaPolicy, SynergyPolicy

SEED = 7


def main() -> None:
    testbed = SyntheticTestbed(PAPER_CLUSTER, seed=SEED)
    trace = generate_trace(
        WorkloadConfig(num_jobs=60, seed=SEED, span=6 * 3600.0), testbed
    )
    print(
        f"Trace: {len(trace)} jobs, {trace.total_gpu_hours:.0f} GPU-hours "
        f"over {trace.span / 3600:.1f} h on {PAPER_CLUSTER.total_gpus} GPUs\n"
    )

    rows = []
    for make in (rubick, SiaPolicy, SynergyPolicy):
        policy = make()
        sim = Simulator(
            PAPER_CLUSTER,
            policy,
            testbed=SyntheticTestbed(PAPER_CLUSTER, seed=SEED),
            seed=SEED,
        )
        res = sim.run(trace)
        rows.append(
            (
                policy.name,
                f"{res.avg_jct_hours():.2f}",
                f"{res.p99_jct_hours():.2f}",
                f"{res.makespan_hours:.1f}",
                f"{res.avg_reconfig_count:.1f}",
                len(res.sla_violations()),
            )
        )
    print(
        format_table(
            ["scheduler", "avg JCT h", "p99 JCT h", "makespan h",
             "reconfigs/job", "SLA violations"],
            rows,
            title="64-GPU cluster, 60-job synthetic trace",
        )
    )


if __name__ == "__main__":
    main()
