#!/usr/bin/env python3
"""Fig. 7 scenario: one LLaMA-2-7B job adapting to shrinking resources.

Rubick re-picks the execution plan as the available resources step down from
4 servers × 8 GPUs to a single GPU, then benefits from extra CPUs via
ZeRO-Offload.

Run:  python examples/single_job_reconfiguration.py
"""

from __future__ import annotations

from repro import (
    LLAMA2_7B,
    PAPER_CLUSTER,
    PerfModelStore,
    ResourceShape,
    SensitivityAnalyzer,
    SyntheticTestbed,
    build_perf_model,
)
from repro.analysis import format_table

STAGES = [
    ("4 x 8-GPU servers", 32, 4, 128),
    ("4 x 4-GPU servers", 16, 4, 64),
    ("single 4-GPU server", 4, 1, 16),
    ("one GPU", 1, 1, 8),
    ("one GPU, doubled CPUs", 1, 1, 16),
]


def main() -> None:
    testbed = SyntheticTestbed(PAPER_CLUSTER, seed=42)
    batch = LLAMA2_7B.global_batch_size
    perf, _ = build_perf_model(testbed, LLAMA2_7B, batch, seed=42)
    store = PerfModelStore()
    store.add(perf)
    analyzer = SensitivityAnalyzer(store, PAPER_CLUSTER)

    rows = []
    for label, gpus, nodes, cpus in STAGES:
        shape = ResourceShape(
            gpus=gpus, num_nodes=nodes,
            min_gpus_per_node=gpus // nodes, cpus=cpus,
        )
        best = analyzer.best_for_shape(LLAMA2_7B, batch, shape)
        if best is None:
            rows.append((label, "(nothing fits)", "-"))
            continue
        true = testbed.true_throughput(LLAMA2_7B, best.plan, shape, batch)
        rows.append((label, best.plan.describe(), f"{true:.2f}"))
    print(
        format_table(
            ["resource stage", "Rubick's plan choice", "throughput ex/s"],
            rows,
            title="LLaMA-2-7B reconfiguration under shrinking resource limits",
        )
    )


if __name__ == "__main__":
    main()
