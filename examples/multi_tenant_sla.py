#!/usr/bin/env python3
"""Multi-tenant SLA: guaranteed vs best-effort jobs, Rubick vs AntMan.

Tenant-A owns the whole cluster quota (guaranteed jobs); Tenant-B runs
best-effort jobs on leftovers.  Rubick guarantees *performance* via
reconfiguration; AntMan guarantees *resources*.  The example prints per-class
JCTs and the fraction of guaranteed jobs whose achieved throughput met the
baseline of their requested configuration.

Run:  python examples/multi_tenant_sla.py
"""

from __future__ import annotations

from repro import (
    JobPriority,
    PAPER_CLUSTER,
    Simulator,
    SyntheticTestbed,
    Tenant,
    WorkloadConfig,
    generate_trace,
    rubick,
    to_multi_tenant_trace,
)
from repro.analysis import format_table
from repro.scheduler.baselines import AntManPolicy

SEED = 7


def main() -> None:
    testbed = SyntheticTestbed(PAPER_CLUSTER, seed=SEED)
    base = generate_trace(
        WorkloadConfig(num_jobs=60, seed=SEED, span=6 * 3600.0), testbed
    )
    trace = to_multi_tenant_trace(base, seed=SEED)
    tenants = {
        "tenant-a": Tenant(name="tenant-a", gpu_quota=PAPER_CLUSTER.total_gpus),
        "tenant-b": Tenant(name="tenant-b", gpu_quota=0),
    }

    rows = []
    for make in (rubick, AntManPolicy):
        policy = make()
        sim = Simulator(
            PAPER_CLUSTER,
            policy,
            testbed=SyntheticTestbed(PAPER_CLUSTER, seed=SEED),
            seed=SEED,
        )
        res = sim.run(trace, tenants=tenants)
        guar = res.by_priority(JobPriority.GUARANTEED)
        be = res.by_priority(JobPriority.BEST_EFFORT)
        met = sum(1 for r in guar if r.sla_ratio >= 0.95)
        rows.append(
            (
                policy.name,
                f"{res.avg_jct_hours():.2f}",
                f"{res.avg_jct_hours(guar):.2f}",
                f"{res.avg_jct_hours(be):.2f}",
                f"{met}/{len(guar)}",
            )
        )
    print(
        format_table(
            ["scheduler", "JCT all h", "JCT guaranteed h",
             "JCT best-effort h", "SLA met (guaranteed)"],
            rows,
            title="Multi-tenant trace: performance vs resource guarantees",
        )
    )


if __name__ == "__main__":
    main()
